package steiner

import (
	"math"
	"math/rand"
	"testing"

	"gmp/internal/geom"
)

func TestSteinerizedMSTNeverLongerThanMST(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 200; trial++ {
		src := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		dests := randDests(r, 2+r.Intn(20), 1000)
		mst := EuclideanMST(src, dests).TotalLength()
		st := SteinerizedMST(src, dests)
		if err := st.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := st.TotalLength(); got > mst+1e-9 {
			t.Fatalf("trial %d: steinerized %v above MST %v", trial, got, mst)
		}
	}
}

func TestSteinerizedMSTUnitSquareNearOptimal(t *testing.T) {
	// Source at one corner, destinations at the other three: the optimum is
	// 1+√3 ≈ 2.732; corner Steinerization must get within a few percent,
	// far below the MST's 3.
	src := geom.Pt(0, 0)
	dests := []Dest{
		{Pos: geom.Pt(1, 0), Label: 0},
		{Pos: geom.Pt(1, 1), Label: 1},
		{Pos: geom.Pt(0, 1), Label: 2},
	}
	got := SteinerizedMST(src, dests).TotalLength()
	want := 1 + math.Sqrt(3)
	if got > want*1.03 {
		t.Fatalf("unit square steinerized = %v, want ≤ %v", got, want*1.03)
	}
	if got < want-1e-6 {
		t.Fatalf("steinerized %v below the optimum %v — length accounting broken", got, want)
	}
}

func TestSteinerizedMSTEquilateralExact(t *testing.T) {
	// Source plus two destinations forming an equilateral triangle: one
	// corner insertion reaches the exact Fermat optimum.
	src := geom.Pt(0, 0)
	dests := []Dest{
		{Pos: geom.Pt(1, 0), Label: 0},
		{Pos: geom.Pt(0.5, math.Sqrt(3)/2), Label: 1},
	}
	got := SteinerizedMST(src, dests).TotalLength()
	want := math.Sqrt(3)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("equilateral steinerized = %v, want %v", got, want)
	}
}

func TestSteinerizedMSTPreservesTerminals(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	dests := randDests(r, 12, 1000)
	tree := SteinerizedMST(geom.Pt(500, 500), dests)
	if got := len(tree.TerminalIDs()); got != 12 {
		t.Fatalf("terminals = %d", got)
	}
	seen := map[int]bool{}
	for _, id := range tree.TerminalIDs() {
		seen[tree.Vertex(id).Label] = true
	}
	if len(seen) != 12 {
		t.Fatal("labels lost")
	}
}

func TestSteinerizedMSTCollinearNoVirtuals(t *testing.T) {
	src := geom.Pt(0, 0)
	dests := []Dest{
		{Pos: geom.Pt(100, 0), Label: 0},
		{Pos: geom.Pt(200, 0), Label: 1},
		{Pos: geom.Pt(300, 0), Label: 2},
	}
	tree := SteinerizedMST(src, dests)
	for _, v := range tree.Vertices() {
		if v.Kind == Virtual {
			t.Fatalf("collinear chain gained a virtual vertex at %v", v.Pos)
		}
	}
	if got := tree.TotalLength(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("length = %v", got)
	}
}

func TestSteinerizedVsReferenceAt4(t *testing.T) {
	// On 4-terminal instances the steinerized tree must stay close to the
	// near-optimal reference (it is a local optimum of the same objective).
	r := rand.New(rand.NewSource(97))
	var stSum, refSum float64
	for trial := 0; trial < 200; trial++ {
		src := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		dests := randDests(r, 3, 1000)
		pts := []geom.Point{src, dests[0].Pos, dests[1].Pos, dests[2].Pos}
		stSum += SteinerizedMST(src, dests).TotalLength()
		refSum += ReferenceLength(pts)
	}
	if stSum > refSum*1.05 {
		t.Fatalf("steinerized mean %v more than 5%% above reference %v", stSum/200, refSum/200)
	}
	if stSum < refSum-1e-6 {
		t.Fatalf("steinerized mean %v below the reference %v", stSum/200, refSum/200)
	}
}
