package steiner

import "gmp/internal/geom"

// steinerizeMinGain is the relative improvement an insertion must achieve;
// it stops the refinement loop once gains fall into numerical noise.
const steinerizeMinGain = 1e-9

// SteinerizedMST builds the Euclidean MST over {source} ∪ dests and then
// improves it by greedy corner Steinerization: wherever two tree edges meet
// at a vertex with an angle below 120°, the corner is replaced by the exact
// three-point Steiner (Fermat) junction, which strictly shortens the tree.
// The scan repeats until no corner yields a gain.
//
// This is the classical MST-improvement family the paper cites as prior
// Steiner heuristics ([23, 26, 33]); the library ships it as the A-6
// ablation's tree builder, sandwiching rrSTR between the plain MST and a
// polished local optimum.
// SteinerizedMST allocates a fresh arena per call; hot paths should hold a
// Builder and call its SteinerizedMST instead.
func SteinerizedMST(source geom.Point, dests []Dest) *Tree {
	return new(Builder).SteinerizedMST(source, dests)
}

// steinerizeOnce finds the corner with the largest insertion gain and
// replaces it; it reports whether an insertion happened.
func steinerizeOnce(tree *Tree) bool {
	type corner struct {
		v, a, b int
		gain    float64
		at      geom.Point
	}
	best := corner{gain: 0}
	for v := 0; v < tree.NumVertices(); v++ {
		idxs := tree.adj[v]
		if len(idxs) < 2 {
			continue
		}
		vp := tree.Vertex(v).Pos
		// Iterate neighbor pairs straight off the adjacency (same order as
		// Neighbors would return) without materializing the neighbor slice.
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				a, b := tree.edgeOther(idxs[i], v), tree.edgeOther(idxs[j], v)
				ap, bp := tree.Vertex(a).Pos, tree.Vertex(b).Pos
				t := geom.SteinerPoint(vp, ap, bp)
				if t.Eq(vp) || t.Eq(ap) || t.Eq(bp) {
					continue // corner already optimal (angle ≥ 120°)
				}
				old := vp.Dist(ap) + vp.Dist(bp)
				new := t.Dist(vp) + t.Dist(ap) + t.Dist(bp)
				if gain := old - new; gain > best.gain {
					best = corner{v: v, a: a, b: b, gain: gain, at: t}
				}
			}
		}
	}
	scale := tree.TotalLength()
	if scale <= 0 || best.gain <= steinerizeMinGain*scale {
		return false
	}
	w := tree.AddVirtual(best.at)
	tree.RemoveEdge(best.v, best.a)
	tree.RemoveEdge(best.v, best.b)
	tree.AddEdge(w, best.v)
	tree.AddEdge(w, best.a)
	tree.AddEdge(w, best.b)
	return true
}
