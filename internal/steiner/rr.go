package steiner

import "gmp/internal/geom"

// ReductionRatio computes the paper's §3.1 measure for a source s and a
// destination pair (u, v):
//
//	RR(s, u, v) = 1 - (d(s,t) + d(t,u) + d(t,v)) / (d(s,u) + d(s,v))
//
// where t is the exact Euclidean Steiner (Fermat) point of {s, u, v}. The
// ratio is the fractional tree-length saving obtained by letting u and v
// share the subpath s→t instead of using two direct edges; it is always
// below 1/2, grows with the distance of the pair from the source, and grows
// as the angle ∠(u, s, v) shrinks — the two observations that guide rrSTR.
//
// Degenerate input (both destinations collocated with the source) yields 0.
func ReductionRatio(s, u, v geom.Point) float64 {
	rr, _ := ReductionRatioPoint(s, u, v)
	return rr
}

// ReductionRatioPoint is ReductionRatio but also returns the Steiner point t,
// so callers that need both avoid recomputing the Fermat construction.
func ReductionRatioPoint(s, u, v geom.Point) (float64, geom.Point) {
	direct := s.Dist(u) + s.Dist(v)
	if direct <= geom.Eps {
		return 0, s
	}
	t := geom.SteinerPoint(s, u, v)
	through := s.Dist(t) + t.Dist(u) + t.Dist(v)
	return 1 - through/direct, t
}
