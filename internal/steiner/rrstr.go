package steiner

import (
	"gmp/internal/geom"
)

// Dest is a multicast destination handed to a tree builder: a position plus
// the caller's identifier (for example a network node ID).
type Dest struct {
	Pos   geom.Point
	Label int
}

// Options configures the rrSTR construction (paper Figure 3 and §3.3).
type Options struct {
	// RadioRange is the transmission radius of the current node, used by the
	// radio-range-aware special cases. It must be positive when RadioAware
	// is set.
	RadioRange float64
	// RadioAware enables the §3.3 special cases that suppress virtual
	// destinations which would only add hops. Disabling it yields GMPnr,
	// the paper's ablation variant.
	RadioAware bool
	// OneInRangeProse selects the §3.3 prose behaviour for the
	// "only one endpoint within radio range and the virtual point is not
	// beneficial" case: attach both destinations directly to the source.
	// The default (false) follows the normative Figure 3 pseudocode, which
	// deactivates the pair instead. Kept as an option for the A-1 ablation.
	OneInRangeProse bool
}

// pairItem is a candidate destination pair in the reduction-ratio queue.
type pairItem struct {
	u, v int // vertex IDs, u < v
	rr   float64
	t    geom.Point // Steiner point of {source, u, v}
}

// pairQueue is a max-heap of pairItems keyed by reduction ratio with a
// deterministic vertex-ID tie-break. It is hand-rolled rather than built on
// container/heap: the standard heap boxes every element into an interface{},
// one allocation per push, which the per-decision rrSTR rebuild cannot
// afford. The ordering is a strict total order (no two items compare equal),
// so every pop returns the unique maximum and the construction sequence is
// identical to the container/heap version.
type pairQueue []pairItem

// before reports whether item i has priority over item j.
func (q pairQueue) before(i, j int) bool {
	if q[i].rr != q[j].rr {
		return q[i].rr > q[j].rr
	}
	if q[i].u != q[j].u {
		return q[i].u < q[j].u
	}
	return q[i].v < q[j].v
}

// init heapifies the queue in place.
func (q pairQueue) init() {
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

func (q *pairQueue) push(it pairItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *pairQueue) pop() pairItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	it := h[n]
	*q = h[:n]
	(*q).down(0)
	return it
}

func (q pairQueue) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !q.before(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (q pairQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q.before(r, l) {
			j = r
		}
		if !q.before(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// Build runs the rrSTR heuristic (paper Figure 3): it constructs a virtual
// Euclidean Steiner tree rooted at source and spanning all dests. The tree
// may contain Virtual vertices at exact three-point Steiner locations.
//
// The returned tree always satisfies Validate: it is acyclic and every
// terminal is connected to the source. Build never fails; degenerate inputs
// (no destinations, collocated points) produce the obvious trees.
//
// Build allocates a fresh arena per call. A forwarding hot path that builds
// one tree per decision should hold a Builder instead and call its Build,
// which reuses all internal storage.
func Build(source geom.Point, dests []Dest, opts Options) *Tree {
	return new(Builder).Build(source, dests, opts)
}
