package steiner

import (
	"container/heap"
	"sort"

	"gmp/internal/geom"
)

// Dest is a multicast destination handed to a tree builder: a position plus
// the caller's identifier (for example a network node ID).
type Dest struct {
	Pos   geom.Point
	Label int
}

// Options configures the rrSTR construction (paper Figure 3 and §3.3).
type Options struct {
	// RadioRange is the transmission radius of the current node, used by the
	// radio-range-aware special cases. It must be positive when RadioAware
	// is set.
	RadioRange float64
	// RadioAware enables the §3.3 special cases that suppress virtual
	// destinations which would only add hops. Disabling it yields GMPnr,
	// the paper's ablation variant.
	RadioAware bool
	// OneInRangeProse selects the §3.3 prose behaviour for the
	// "only one endpoint within radio range and the virtual point is not
	// beneficial" case: attach both destinations directly to the source.
	// The default (false) follows the normative Figure 3 pseudocode, which
	// deactivates the pair instead. Kept as an option for the A-1 ablation.
	OneInRangeProse bool
}

// pairItem is a candidate destination pair in the reduction-ratio queue.
type pairItem struct {
	u, v int // vertex IDs, u < v
	rr   float64
	t    geom.Point // Steiner point of {source, u, v}
}

// pairQueue is a max-heap of pairItems keyed by reduction ratio.
type pairQueue []pairItem

func (q pairQueue) Len() int { return len(q) }
func (q pairQueue) Less(i, j int) bool {
	// Deterministic tie-break on vertex IDs so identical inputs always
	// produce identical trees.
	if q[i].rr != q[j].rr {
		return q[i].rr > q[j].rr
	}
	if q[i].u != q[j].u {
		return q[i].u < q[j].u
	}
	return q[i].v < q[j].v
}
func (q pairQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pairQueue) Push(x interface{}) { *q = append(*q, x.(pairItem)) }
func (q *pairQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Build runs the rrSTR heuristic (paper Figure 3): it constructs a virtual
// Euclidean Steiner tree rooted at source and spanning all dests. The tree
// may contain Virtual vertices at exact three-point Steiner locations.
//
// The returned tree always satisfies Validate: it is acyclic and every
// terminal is connected to the source. Build never fails; degenerate inputs
// (no destinations, collocated points) produce the obvious trees.
func Build(source geom.Point, dests []Dest, opts Options) *Tree {
	tree := NewTree(source)
	n := len(dests)
	if n == 0 {
		return tree
	}

	active := make(map[int]bool, n)
	for _, d := range dests {
		id := tree.AddTerminal(d.Pos, d.Label)
		active[id] = true
	}

	// Step 2 of Figure 3: reduction ratios and Steiner points for all pairs.
	q := make(pairQueue, 0, n*(n-1)/2)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			rr, t := ReductionRatioPoint(source, tree.Vertex(i).Pos, tree.Vertex(j).Pos)
			q = append(q, pairItem{u: i, v: j, rr: rr, t: t})
		}
	}
	heap.Init(&q)

	deadPairs := make(map[[2]int]bool)

	for q.Len() > 0 {
		it := heap.Pop(&q).(pairItem)
		if !active[it.u] || !active[it.v] || deadPairs[[2]int{it.u, it.v}] {
			continue // lazily discarded stale entry
		}
		u, v, t := it.u, it.v, it.t
		upos, vpos := tree.Vertex(u).Pos, tree.Vertex(v).Pos

		switch {
		case t.Eq(source):
			// Steiner point collocated with the source: direct edges.
			tree.AddEdge(0, u)
			tree.AddEdge(0, v)
			delete(active, u)
			delete(active, v)

		case t.Eq(upos):
			// u acts as the Steiner point; u stays active so it can keep
			// pairing with other destinations.
			tree.AddEdge(u, v)
			delete(active, v)

		case t.Eq(vpos):
			tree.AddEdge(u, v)
			delete(active, u)

		default:
			if opts.RadioAware && applyRadioCases(tree, source, it, opts, active, deadPairs) {
				continue
			}
			// Create a new virtual destination w at the Steiner point.
			w := tree.AddVirtual(t)
			tree.AddEdge(w, u)
			tree.AddEdge(w, v)
			delete(active, u)
			delete(active, v)
			active[w] = true
			ids := make([]int, 0, len(active))
			for id := range active {
				if id != w {
					ids = append(ids, id)
				}
			}
			sort.Ints(ids)
			for _, id := range ids {
				rr, st := ReductionRatioPoint(source, t, tree.Vertex(id).Pos)
				a, b := w, id
				if a > b {
					a, b = b, a
				}
				heap.Push(&q, pairItem{u: a, v: b, rr: rr, t: st})
			}
		}
	}

	// Queue exhausted: every destination still active is covered by a direct
	// edge from the source (the "(c, c) pair" of the paper's walk-through).
	// Iterate in ID order for determinism.
	for id := 1; id < tree.NumVertices(); id++ {
		if active[id] {
			tree.AddEdge(0, id)
			delete(active, id)
		}
	}
	return tree
}

// applyRadioCases implements the three §3.3 radio-range-aware special cases.
// It reports whether the pair was fully handled (true) or whether the caller
// should proceed to create a virtual destination (false).
func applyRadioCases(tree *Tree, source geom.Point, it pairItem, opts Options, active map[int]bool, deadPairs map[[2]int]bool) bool {
	u, v, t := it.u, it.v, it.t
	upos, vpos := tree.Vertex(u).Pos, tree.Vertex(v).Pos
	rr := opts.RadioRange
	du, dv := source.Dist(upos), source.Dist(vpos)
	key := [2]int{u, v}

	// Cost comparison of §3.3: routing through the virtual destination costs
	// one hop (rr) plus the residual legs; direct delivery costs du + dv.
	viaVirtual := rr + t.Dist(upos) + t.Dist(vpos)
	notBeneficial := viaVirtual > du+dv

	switch {
	case du < rr && dv < rr:
		// Case 1: both are one hop away; a virtual destination could only
		// add a hop to each. Deactivate the pair (not the nodes).
		deadPairs[key] = true
		return true

	case du < rr:
		// Case 3 with u in range.
		if notBeneficial {
			if opts.OneInRangeProse {
				tree.AddEdge(0, u)
				tree.AddEdge(0, v)
				delete(active, u)
				delete(active, v)
			} else {
				deadPairs[key] = true
			}
			return true
		}
		// u itself serves as the Steiner point.
		tree.AddEdge(u, v)
		delete(active, v)
		return true

	case dv < rr:
		// Case 3 with v in range, symmetric.
		if notBeneficial {
			if opts.OneInRangeProse {
				tree.AddEdge(0, u)
				tree.AddEdge(0, v)
				delete(active, u)
				delete(active, v)
			} else {
				deadPairs[key] = true
			}
			return true
		}
		tree.AddEdge(u, v)
		delete(active, u)
		return true

	case source.Dist(t) < rr && notBeneficial:
		// Case 2: the Steiner point is within one hop but not worth the
		// detour; the source serves as the Steiner point.
		tree.AddEdge(0, u)
		tree.AddEdge(0, v)
		delete(active, u)
		delete(active, v)
		return true
	}
	return false
}
