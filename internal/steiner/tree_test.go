package steiner

import (
	"errors"
	"strings"
	"testing"

	"gmp/internal/geom"
)

func TestTreeBasics(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	if tr.NumVertices() != 1 || tr.NumEdges() != 0 {
		t.Fatalf("fresh tree: %d verts %d edges", tr.NumVertices(), tr.NumEdges())
	}
	src := tr.Vertex(0)
	if src.Kind != Source || src.Label != -1 {
		t.Fatalf("source vertex = %+v", src)
	}
	a := tr.AddTerminal(geom.Pt(1, 0), 42)
	b := tr.AddTerminal(geom.Pt(0, 1), 43)
	w := tr.AddVirtual(geom.Pt(0.5, 0.5))
	if tr.Vertex(a).Label != 42 || tr.Vertex(b).Label != 43 || tr.Vertex(w).Label != -1 {
		t.Fatal("labels not preserved")
	}
	tr.AddEdge(0, w)
	tr.AddEdge(w, a)
	tr.AddEdge(w, b)
	if tr.NumEdges() != 3 {
		t.Fatalf("edges = %d", tr.NumEdges())
	}
	if got := tr.Degree(w); got != 3 {
		t.Fatalf("degree(w) = %d", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantLen := geom.Pt(0.5, 0.5).Norm() * 3
	if got := tr.TotalLength(); got < wantLen-1e-9 || got > wantLen+1e-9 {
		t.Fatalf("TotalLength = %v, want %v", got, wantLen)
	}
}

func TestTreeChildrenOrderAndLastChild(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	a := tr.AddTerminal(geom.Pt(1, 0), 1)
	b := tr.AddTerminal(geom.Pt(2, 0), 2)
	c := tr.AddTerminal(geom.Pt(3, 0), 3)
	tr.AddEdge(0, b)
	tr.AddEdge(0, a)
	tr.AddEdge(0, c)
	got := tr.Children(0, -1)
	want := []int{b, a, c}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Children = %v, want %v (insertion order)", got, want)
		}
	}
	if lc := tr.LastChild(0, -1); lc != c {
		t.Fatalf("LastChild = %d, want %d", lc, c)
	}
	if lc := tr.LastChild(a, 0); lc != -1 {
		t.Fatalf("leaf LastChild = %d, want -1", lc)
	}
}

func TestTreeRemoveEdgeAndSplice(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	w := tr.AddVirtual(geom.Pt(1, 1))
	a := tr.AddTerminal(geom.Pt(2, 2), 1)
	b := tr.AddTerminal(geom.Pt(2, 0), 2)
	tr.AddEdge(0, w)
	tr.AddEdge(w, a)
	tr.AddEdge(w, b)

	// Splitting: detach b from w and attach it to the source, as the GMP
	// void-handling rule does.
	if !tr.RemoveEdge(w, b) {
		t.Fatal("RemoveEdge should find (w,b)")
	}
	if tr.RemoveEdge(w, b) {
		t.Fatal("edge already removed")
	}
	tr.AddEdge(0, b)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after splice: %v", err)
	}
	pivots := tr.Pivots()
	if len(pivots) != 2 || pivots[0] != w || pivots[1] != b {
		t.Fatalf("Pivots = %v, want [%d %d]", pivots, w, b)
	}
	// The newest pivot (b) is the last child of the source.
	if lc := tr.LastChild(0, -1); lc != b {
		t.Fatalf("LastChild = %d, want %d", lc, b)
	}
}

func TestSubtreeTerminals(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	w1 := tr.AddVirtual(geom.Pt(1, 0))
	w2 := tr.AddVirtual(geom.Pt(2, 0))
	a := tr.AddTerminal(geom.Pt(3, 0), 10)
	b := tr.AddTerminal(geom.Pt(3, 1), 11)
	c := tr.AddTerminal(geom.Pt(0, 5), 12)
	tr.AddEdge(0, w1)
	tr.AddEdge(w1, w2)
	tr.AddEdge(w2, a)
	tr.AddEdge(w2, b)
	tr.AddEdge(0, c)

	got := tr.SubtreeTerminals(w1, 0)
	if len(got) != 2 {
		t.Fatalf("SubtreeTerminals(w1) = %v", got)
	}
	set := map[int]bool{got[0]: true, got[1]: true}
	if !set[a] || !set[b] {
		t.Fatalf("SubtreeTerminals(w1) = %v, want {%d,%d}", got, a, b)
	}
	if got := tr.SubtreeTerminals(c, 0); len(got) != 1 || got[0] != c {
		t.Fatalf("SubtreeTerminals(c) = %v", got)
	}
	ids := tr.TerminalIDs()
	if len(ids) != 3 {
		t.Fatalf("TerminalIDs = %v", ids)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	a := tr.AddTerminal(geom.Pt(1, 0), 1)
	b := tr.AddTerminal(geom.Pt(0, 1), 2)
	tr.AddEdge(0, a)
	tr.AddEdge(a, b)
	tr.AddEdge(b, 0) // cycle
	if err := tr.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestValidateDetectsDisconnected(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	a := tr.AddTerminal(geom.Pt(1, 0), 1)
	tr.AddTerminal(geom.Pt(5, 5), 2) // never wired up
	tr.AddEdge(0, a)
	if err := tr.Validate(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Validate = %v, want ErrDisconnected", err)
	}
}

func TestTreeString(t *testing.T) {
	tr := NewTree(geom.Pt(0, 0))
	a := tr.AddTerminal(geom.Pt(1, 0), 7)
	tr.AddEdge(0, a)
	s := tr.String()
	if !strings.Contains(s, "source #0") || !strings.Contains(s, "terminal #1") ||
		!strings.Contains(s, "label=7") {
		t.Fatalf("String output missing parts:\n%s", s)
	}
}

func TestVertexKindString(t *testing.T) {
	if Source.String() != "source" || Terminal.String() != "terminal" || Virtual.String() != "virtual" {
		t.Error("kind strings")
	}
	if got := VertexKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %q", got)
	}
}
