// Package steiner implements the tree-construction heart of the GMP protocol
// (Wu & Candan, ICDCS 2006): the reduction-ratio measure, the rrSTR heuristic
// for virtual Euclidean Steiner trees (basic and radio-range-aware), a Prim
// Euclidean minimum spanning tree used by the LGS baseline, and the
// Kou–Markowsky–Berman graph Steiner heuristic used by the centralized SMT
// baseline.
package steiner

import (
	"errors"
	"fmt"
	"strings"

	"gmp/internal/geom"
)

// VertexKind distinguishes the three vertex roles of an rrSTR tree.
type VertexKind int

const (
	// Source is the root of the tree: the current transmitting node.
	Source VertexKind = iota + 1
	// Terminal is an actual multicast destination.
	Terminal
	// Virtual is a Steiner point introduced by the heuristic; it does not
	// correspond to any physical node.
	Virtual
)

// String implements fmt.Stringer.
func (k VertexKind) String() string {
	switch k {
	case Source:
		return "source"
	case Terminal:
		return "terminal"
	case Virtual:
		return "virtual"
	default:
		return fmt.Sprintf("VertexKind(%d)", int(k))
	}
}

// Vertex is a node of a multicast tree. Label carries the caller's identifier
// for terminals (for example a network node ID); it is -1 for the source and
// for virtual vertices.
type Vertex struct {
	ID    int
	Kind  VertexKind
	Pos   geom.Point
	Label int
}

// Edge is an undirected tree edge. Seq records the order in which edges were
// inserted by the construction algorithm; the GMP group-splitting rule
// (paper §4.1) depends on it to find the "last child" of a pivot.
type Edge struct {
	A, B int
	Seq  int
}

// Tree is a multicast tree rooted at a source vertex (always ID 0). Trees are
// mutable: the GMP routing layer removes and re-adds edges while splitting
// destination groups around voids.
//
// Vertex IDs are dense, so the adjacency is a slice indexed by vertex ID.
// Reset rewinds a tree to a bare source while keeping every internal buffer,
// which is what lets a Builder construct one tree per forwarding decision
// without allocating in steady state.
type Tree struct {
	verts   []Vertex
	edges   []Edge
	adj     [][]int // vertex ID -> indices into edges
	nextSeq int

	// seqBuf and stackBuf are reusable scratch for the Append* traversals.
	seqBuf   []int
	stackBuf []int
}

// NewTree returns a tree containing only the source vertex at pos.
func NewTree(pos geom.Point) *Tree {
	t := &Tree{}
	t.Reset(pos)
	return t
}

// Reset rewinds the tree to a bare source vertex at pos, retaining all
// internal storage. It makes the zero Tree usable and lets builders reuse one
// tree across constructions.
func (t *Tree) Reset(pos geom.Point) {
	t.verts = t.verts[:0]
	t.edges = t.edges[:0]
	t.adj = t.adj[:0]
	t.nextSeq = 0
	t.verts = append(t.verts, Vertex{ID: 0, Kind: Source, Pos: pos, Label: -1})
	t.growAdj()
}

// growAdj extends the adjacency by one vertex slot, reusing retained edge-
// index buffers from before the last Reset when available.
func (t *Tree) growAdj() {
	if len(t.adj) < cap(t.adj) {
		t.adj = t.adj[:len(t.adj)+1]
		t.adj[len(t.adj)-1] = t.adj[len(t.adj)-1][:0]
	} else {
		t.adj = append(t.adj, nil)
	}
}

// AddTerminal appends a terminal vertex and returns its ID. Label is the
// caller's identifier for the destination.
func (t *Tree) AddTerminal(pos geom.Point, label int) int {
	id := len(t.verts)
	t.verts = append(t.verts, Vertex{ID: id, Kind: Terminal, Pos: pos, Label: label})
	t.growAdj()
	return id
}

// AddVirtual appends a virtual (Steiner-point) vertex and returns its ID.
func (t *Tree) AddVirtual(pos geom.Point) int {
	id := len(t.verts)
	t.verts = append(t.verts, Vertex{ID: id, Kind: Virtual, Pos: pos, Label: -1})
	t.growAdj()
	return id
}

// Vertex returns the vertex with the given ID.
func (t *Tree) Vertex(id int) Vertex { return t.verts[id] }

// NumVertices returns the number of vertices, including source and virtuals.
func (t *Tree) NumVertices() int { return len(t.verts) }

// NumEdges returns the number of live edges.
func (t *Tree) NumEdges() int { return len(t.edges) }

// Vertices returns a copy of all vertices.
func (t *Tree) Vertices() []Vertex {
	out := make([]Vertex, len(t.verts))
	copy(out, t.verts)
	return out
}

// Edges returns a copy of all live edges.
func (t *Tree) Edges() []Edge {
	out := make([]Edge, len(t.edges))
	copy(out, t.edges)
	return out
}

// AddEdge inserts the undirected edge (a, b) and returns its insertion
// sequence number.
func (t *Tree) AddEdge(a, b int) int {
	seq := t.nextSeq
	t.nextSeq++
	idx := len(t.edges)
	t.edges = append(t.edges, Edge{A: a, B: b, Seq: seq})
	t.adj[a] = append(t.adj[a], idx)
	t.adj[b] = append(t.adj[b], idx)
	return seq
}

// RemoveEdge deletes the undirected edge (a, b). It reports whether such an
// edge existed.
func (t *Tree) RemoveEdge(a, b int) bool {
	for idx, e := range t.edges {
		if e.A < 0 { // tombstone
			continue
		}
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			t.detachEdge(idx)
			return true
		}
	}
	return false
}

// detachEdge tombstones edges[idx] and compacts it away.
func (t *Tree) detachEdge(idx int) {
	e := t.edges[idx]
	t.adj[e.A] = removeInt(t.adj[e.A], idx)
	t.adj[e.B] = removeInt(t.adj[e.B], idx)
	// Compact: move the last edge into idx and fix adjacency references.
	last := len(t.edges) - 1
	if idx != last {
		moved := t.edges[last]
		t.edges[idx] = moved
		t.adj[moved.A] = replaceInt(t.adj[moved.A], last, idx)
		t.adj[moved.B] = replaceInt(t.adj[moved.B], last, idx)
	}
	t.edges = t.edges[:last]
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

func replaceInt(s []int, old, new int) []int {
	for i, x := range s {
		if x == old {
			s[i] = new
		}
	}
	return s
}

// edgeOther returns the endpoint of edges[idx] that is not v.
func (t *Tree) edgeOther(idx, v int) int {
	e := t.edges[idx]
	if e.A == v {
		return e.B
	}
	return e.A
}

// Neighbors returns the IDs adjacent to v, in no particular order.
func (t *Tree) Neighbors(v int) []int {
	idxs := t.adj[v]
	out := make([]int, 0, len(idxs))
	for _, i := range idxs {
		e := t.edges[i]
		if e.A == v {
			out = append(out, e.B)
		} else {
			out = append(out, e.A)
		}
	}
	return out
}

// Degree returns the number of live edges incident to v.
func (t *Tree) Degree(v int) int { return len(t.adj[v]) }

// Children returns the children of v in the tree rooted at the source,
// ordered by edge insertion sequence (oldest first). parent must be v's
// parent ID, or -1 when v is the source.
func (t *Tree) Children(v, parent int) []int {
	return t.AppendChildren(v, parent, make([]int, 0, len(t.adj[v])))
}

// AppendChildren appends the children of v (rooted at the source, given
// parent) to buf in edge insertion-sequence order and returns the extended
// slice. Pass buf[:0] of a reusable slice for an allocation-free call; the
// ordering is identical to Children.
func (t *Tree) AppendChildren(v, parent int, buf []int) []int {
	start := len(buf)
	seqs := t.seqBuf[:0]
	for _, i := range t.adj[v] {
		e := t.edges[i]
		other := e.B
		if e.A != v {
			other = e.A
		}
		if other == parent {
			continue
		}
		// Insertion sort by Seq; sequence numbers are unique, so this yields
		// exactly the order sort-by-seq produced.
		buf = append(buf, 0)
		seqs = append(seqs, 0)
		k := len(seqs) - 1
		for k > 0 && seqs[k-1] > e.Seq {
			seqs[k] = seqs[k-1]
			buf[start+k] = buf[start+k-1]
			k--
		}
		seqs[k] = e.Seq
		buf[start+k] = other
	}
	t.seqBuf = seqs[:0]
	return buf
}

// LastChild returns the child of v (rooted at source, given parent) whose
// connecting edge was inserted most recently, or -1 if v has no children.
func (t *Tree) LastChild(v, parent int) int {
	best, bestSeq := -1, -1
	for _, i := range t.adj[v] {
		e := t.edges[i]
		other := e.B
		if e.A != v {
			other = e.A
		}
		if other == parent {
			continue
		}
		if e.Seq > bestSeq {
			best, bestSeq = other, e.Seq
		}
	}
	return best
}

// Pivots returns the children of the source, ordered by insertion sequence.
// In GMP terminology these are the subtree roots that partition the
// destinations into groups (paper §4).
func (t *Tree) Pivots() []int { return t.Children(0, -1) }

// SubtreeTerminals returns the terminal vertex IDs in the subtree hanging off
// root when the tree is rooted at the source and root's parent is parent. If
// root itself is a terminal it is included.
func (t *Tree) SubtreeTerminals(root, parent int) []int {
	var out []int
	t.walk(root, parent, func(v Vertex) {
		if v.Kind == Terminal {
			out = append(out, v.ID)
		}
	})
	return out
}

// AppendSubtreeLabels appends the Labels of the terminal vertices in the
// subtree hanging off root (excluding the parent side) to buf and returns the
// extended slice. The traversal is iterative and allocation-free when buf has
// capacity; the append order is unspecified — callers that need a
// deterministic order must sort (GMP's grouping does).
func (t *Tree) AppendSubtreeLabels(root, parent int, buf []int) []int {
	st := append(t.stackBuf[:0], root, parent)
	for len(st) > 0 {
		p := st[len(st)-1]
		v := st[len(st)-2]
		st = st[:len(st)-2]
		vert := &t.verts[v]
		if vert.Kind == Terminal {
			buf = append(buf, vert.Label)
		}
		for _, i := range t.adj[v] {
			e := t.edges[i]
			other := e.B
			if e.A != v {
				other = e.A
			}
			if other != p {
				st = append(st, other, v)
			}
		}
	}
	t.stackBuf = st[:0]
	return buf
}

// walk visits the subtree under root (excluding the parent side) in DFS
// order.
func (t *Tree) walk(root, parent int, visit func(Vertex)) {
	visit(t.verts[root])
	for _, c := range t.Children(root, parent) {
		t.walk(c, root, visit)
	}
}

// TotalLength returns the summed Euclidean length of all live edges.
func (t *Tree) TotalLength() float64 {
	var total float64
	for _, e := range t.edges {
		total += t.verts[e.A].Pos.Dist(t.verts[e.B].Pos)
	}
	return total
}

// TerminalIDs returns the IDs of all terminal vertices.
func (t *Tree) TerminalIDs() []int {
	var out []int
	for _, v := range t.verts {
		if v.Kind == Terminal {
			out = append(out, v.ID)
		}
	}
	return out
}

// Validation errors returned by Validate.
var (
	ErrCycle        = errors.New("steiner: tree contains a cycle")
	ErrDisconnected = errors.New("steiner: a terminal is not connected to the source")
)

// Validate checks the structural invariants the routing layer depends on:
// the edge set is acyclic and every terminal is connected to the source.
// Virtual vertices may be orphaned (they are simply unused).
func (t *Tree) Validate() error {
	seen := make(map[int]bool, len(t.verts))
	// BFS from source, detecting cycles via a visited-edge count argument:
	// in an acyclic graph, the number of edges reachable from the source is
	// exactly the number of reachable vertices minus one.
	queue := []int{0}
	seen[0] = true
	reachableEdges := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, i := range t.adj[v] {
			e := t.edges[i]
			other := e.B
			if e.A != v {
				other = e.A
			}
			reachableEdges++ // counted once per endpoint; halved below
			if !seen[other] {
				seen[other] = true
				queue = append(queue, other)
			}
		}
	}
	reachableVerts := len(seen)
	if reachableEdges/2 != reachableVerts-1 {
		return ErrCycle
	}
	for _, v := range t.verts {
		if v.Kind == Terminal && !seen[v.ID] {
			return fmt.Errorf("%w: terminal %d (label %d)", ErrDisconnected, v.ID, v.Label)
		}
	}
	return nil
}

// String renders the tree as an indented outline rooted at the source, for
// debugging and the gmptree CLI.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, 0, -1, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, v, parent, depth int) {
	vert := t.verts[v]
	fmt.Fprintf(b, "%s%s #%d %s", strings.Repeat("  ", depth), vert.Kind, vert.ID, vert.Pos)
	if vert.Kind == Terminal {
		fmt.Fprintf(b, " label=%d", vert.Label)
	}
	b.WriteByte('\n')
	for _, c := range t.Children(v, parent) {
		t.render(b, c, v, depth+1)
	}
}
