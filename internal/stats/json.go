package stats

import (
	"encoding/json"
	"errors"
	"fmt"
)

// jsonTable is the stable serialized shape of a Table. Tags make the file
// format an explicit contract independent of Go field names.
type jsonTable struct {
	Title   string       `json:"title"`
	XLabel  string       `json:"xLabel"`
	YLabel  string       `json:"yLabel"`
	Xs      []float64    `json:"xs"`
	Series  []jsonSeries `json:"series"`
	Version int          `json:"version"`
}

type jsonSeries struct {
	Label string    `json:"label"`
	Y     []float64 `json:"y"`
}

// tableFormatVersion guards against future layout changes.
const tableFormatVersion = 1

// ErrBadTableJSON is returned for malformed or incompatible table files.
var ErrBadTableJSON = errors.New("stats: bad table JSON")

// MarshalJSON implements json.Marshaler with a stable, versioned layout.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := jsonTable{
		Title:   t.Title,
		XLabel:  t.XLabel,
		YLabel:  t.YLabel,
		Xs:      t.Xs,
		Version: tableFormatVersion,
	}
	for _, s := range t.Series {
		out.Series = append(out.Series, jsonSeries{Label: s.Label, Y: s.Y})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var in jsonTable
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTableJSON, err)
	}
	if in.Version != tableFormatVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTableJSON, in.Version)
	}
	t.Title = in.Title
	t.XLabel = in.XLabel
	t.YLabel = in.YLabel
	t.Xs = in.Xs
	t.Series = nil
	for _, s := range in.Series {
		t.Series = append(t.Series, Series{Label: s.Label, Y: s.Y})
	}
	return nil
}
