package stats

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	orig := newTestTable()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version":1`) {
		t.Fatalf("missing version: %s", data)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != orig.Title || back.XLabel != orig.XLabel || back.YLabel != orig.YLabel {
		t.Fatalf("headers lost: %+v", back)
	}
	if len(back.Series) != len(orig.Series) {
		t.Fatalf("series = %d", len(back.Series))
	}
	for i := range orig.Series {
		if back.Series[i].Label != orig.Series[i].Label {
			t.Fatal("labels lost")
		}
		for j := range orig.Series[i].Y {
			if back.Series[i].Y[j] != orig.Series[i].Y[j] {
				t.Fatal("values lost")
			}
		}
	}
	// The rendered outputs agree too.
	if back.CSV() != orig.CSV() {
		t.Fatal("CSV mismatch after round trip")
	}
}

func TestTableJSONBadInputs(t *testing.T) {
	var tbl Table
	// Syntactically invalid JSON is rejected by encoding/json itself before
	// our UnmarshalJSON runs; structurally wrong JSON reaches it and gets
	// the wrapped error.
	if err := json.Unmarshal([]byte("{"), &tbl); err == nil {
		t.Fatal("syntax error should fail")
	}
	if err := json.Unmarshal([]byte(`[1,2,3]`), &tbl); !errors.Is(err, ErrBadTableJSON) {
		t.Fatalf("wrong shape: %v", err)
	}
	if err := json.Unmarshal([]byte(`{"version":99}`), &tbl); !errors.Is(err, ErrBadTableJSON) {
		t.Fatalf("version: %v", err)
	}
}
