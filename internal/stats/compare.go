package stats

import (
	"errors"
	"fmt"
	"math"
)

// PairedComparison summarizes paired per-task differences between two
// protocols (A − B): the mean difference with a normal-approximation
// confidence interval. With the harness's hundreds of paired tasks the
// normal approximation is solid.
type PairedComparison struct {
	// MeanDiff is mean(A−B).
	MeanDiff float64
	// CILow and CIHigh bound the confidence interval for the mean
	// difference.
	CILow, CIHigh float64
	// N is the number of pairs.
	N int
}

// ErrTooFewPairs is returned when fewer than two pairs are supplied.
var ErrTooFewPairs = errors.New("stats: need at least two pairs")

// zFor maps common confidence levels to standard-normal quantiles.
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.960
	case confidence >= 0.90:
		return 1.645
	default:
		return 1.960
	}
}

// ComparePaired computes the confidence interval of mean(a−b) for paired
// samples at the given confidence level (0.90, 0.95 or 0.99).
func ComparePaired(a, b []float64, confidence float64) (PairedComparison, error) {
	if len(a) != len(b) {
		return PairedComparison{}, fmt.Errorf("stats: unpaired lengths %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return PairedComparison{}, ErrTooFewPairs
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	mean := Mean(diffs)
	se := StdDev(diffs) / math.Sqrt(float64(len(diffs)))
	z := zFor(confidence)
	return PairedComparison{
		MeanDiff: mean,
		CILow:    mean - z*se,
		CIHigh:   mean + z*se,
		N:        len(diffs),
	}, nil
}

// Significant reports whether the confidence interval excludes zero — i.e.
// the direction of the difference is statistically resolved.
func (c PairedComparison) Significant() bool {
	return c.CILow > 0 || c.CIHigh < 0
}

// String renders the comparison compactly.
func (c PairedComparison) String() string {
	verdict := "not significant"
	if c.Significant() {
		verdict = "significant"
	}
	return fmt.Sprintf("Δ=%.3f CI[%.3f, %.3f] n=%d (%s)",
		c.MeanDiff, c.CILow, c.CIHigh, c.N, verdict)
}
