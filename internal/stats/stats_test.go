package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max")
	}
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Percentile mutated input")
	}
}

func newTestTable() *Table {
	return &Table{
		Title:  "Figure X",
		XLabel: "k",
		YLabel: "hops",
		Xs:     []float64{3, 5},
		Series: []Series{
			{Label: "GMP", Y: []float64{10, 20}},
			{Label: "LGS", Y: []float64{12.5, 26}},
		},
	}
}

func TestTableRender(t *testing.T) {
	out := newTestTable().Render()
	for _, want := range []string{"Figure X", "GMP", "LGS", "10.00", "26.00", "k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	out := newTestTable().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "k,GMP,LGS" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "3,10,12.5" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTableGet(t *testing.T) {
	tbl := newTestTable()
	if s := tbl.Get("GMP"); s == nil || s.Y[1] != 20 {
		t.Fatal("Get GMP")
	}
	if tbl.Get("nope") != nil {
		t.Fatal("Get unknown should be nil")
	}
}

func TestTableRaggedSeries(t *testing.T) {
	tbl := newTestTable()
	tbl.Series[1].Y = tbl.Series[1].Y[:1]
	out := tbl.Render()
	if !strings.Contains(out, "-") {
		t.Fatalf("ragged cell should render dash:\n%s", out)
	}
}
