// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate simulation results into the tables that mirror
// the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Series is one labeled line of a result table: Y values indexed like the
// table's Xs.
type Series struct {
	Label string
	Y     []float64
}

// Table is a rectangular result set mirroring one paper figure: a swept
// X axis and one series per protocol.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%s (rows) vs %s\n", t.XLabel, t.YLabel)

	headers := make([]string, 0, len(t.Series)+1)
	headers = append(headers, t.XLabel)
	for _, s := range t.Series {
		headers = append(headers, s.Label)
	}
	rows := make([][]string, 0, len(t.Xs)+1)
	rows = append(rows, headers)
	for i, x := range t.Xs {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range t.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&b, "%*s", widths[c]+2, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		b.WriteString(trimFloat(x))
		for _, s := range t.Series {
			b.WriteByte(',')
			if i < len(s.Y) {
				b.WriteString(fmt.Sprintf("%g", s.Y[i]))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Get returns the series with the given label, or nil.
func (t *Table) Get(label string) *Series {
	for i := range t.Series {
		if t.Series[i].Label == label {
			return &t.Series[i]
		}
	}
	return nil
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
