package stats

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestComparePairedClearDifference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := r.Float64() * 50
		a[i] = base + 5 + r.NormFloat64()
		b[i] = base + r.NormFloat64()
	}
	c, err := ComparePaired(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant() {
		t.Fatalf("clear +5 shift not significant: %v", c)
	}
	if c.MeanDiff < 4 || c.MeanDiff > 6 {
		t.Fatalf("MeanDiff = %v", c.MeanDiff)
	}
	if c.CILow >= c.MeanDiff || c.CIHigh <= c.MeanDiff {
		t.Fatalf("interval does not bracket the mean: %v", c)
	}
	if !strings.Contains(c.String(), "significant") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestComparePairedNoDifference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 400
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	c, err := ComparePaired(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if c.Significant() {
		t.Fatalf("pure noise reported significant: %v", c)
	}
	if !strings.Contains(c.String(), "not significant") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestComparePairedErrors(t *testing.T) {
	if _, err := ComparePaired([]float64{1}, []float64{1, 2}, 0.95); err == nil {
		t.Fatal("unpaired lengths should error")
	}
	if _, err := ComparePaired([]float64{1}, []float64{2}, 0.95); !errors.Is(err, ErrTooFewPairs) {
		t.Fatalf("err = %v", err)
	}
}

func TestComparePairedWiderAtHigherConfidence(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{0, 1, 2, 5, 4, 5, 8, 7}
	c90, _ := ComparePaired(a, b, 0.90)
	c99, _ := ComparePaired(a, b, 0.99)
	if (c99.CIHigh - c99.CILow) <= (c90.CIHigh - c90.CILow) {
		t.Fatal("99% interval should be wider than 90%")
	}
	// Unknown levels fall back to 95%.
	c95, _ := ComparePaired(a, b, 0.95)
	cOdd, _ := ComparePaired(a, b, 0.5)
	if c95.CILow != cOdd.CILow || c95.CIHigh != cOdd.CIHigh {
		t.Fatal("fallback confidence mismatch")
	}
}
