package beacon

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gmp/internal/geom"
	"gmp/internal/mobility"
)

// sortTables ID-sorts every per-node table in place (the one-shot Tables
// generator appends in map order; the Tracker sorts already).
func sortTables(tables [][]Entry) [][]Entry {
	for i := range tables {
		sort.Slice(tables[i], func(a, b int) bool { return tables[i][a].ID < tables[i][b].ID })
		if len(tables[i]) == 0 {
			tables[i] = nil
		}
	}
	return tables
}

// TestTrackerMatchesTables: for the same seed, an incrementally advanced
// Tracker snapshot equals the one-shot Tables generator — static and mobile,
// regardless of the advance step pattern.
func TestTrackerMatchesTables(t *testing.T) {
	const n, rr, at = 40, 150.0, 17.3
	r := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*500, r.Float64()*500)
	}
	model, err := mobility.NewRandomWaypoint(pts,
		mobility.Config{Width: 500, Height: 500, SpeedMin: 5, SpeedMax: 15, Pause: 1},
		rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	mobile, err := Sampled(model, 0.25, at+1)
	if err != nil {
		t.Fatal(err)
	}

	for name, pos := range map[string]PositionsAt{"static": Static(pts), "mobile": mobile} {
		cfg := DefaultConfig()
		want, err := Tables(cfg, n, pos, rr, at, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		tk, err := NewTracker(cfg, n, pos, rr, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		for _, step := range []float64{0.7, 4.2, 11.9, at} {
			if err := tk.AdvanceTo(step); err != nil {
				t.Fatal(err)
			}
		}
		if got := tk.Tables(); !reflect.DeepEqual(sortTables(want), got) {
			t.Errorf("%s: tracker snapshot diverges from one-shot Tables", name)
		}
	}
}

// twoNodeWalkabout scripts node 1 leaving radio range at t=5 and returning
// at t=12; node 0 stays put.
func twoNodeWalkabout(t float64) []geom.Point {
	p1 := geom.Pt(100, 0)
	if t >= 5 && t < 12 {
		p1 = geom.Pt(10000, 0)
	}
	return []geom.Point{geom.Pt(0, 0), p1}
}

func TestTrackerAgingAndRefresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0 // beacons at integer seconds, deterministic
	tk, err := NewTracker(cfg, 2, twoNodeWalkabout, 150, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	has := func(rcv, id int) bool {
		for _, e := range tk.Tables()[rcv] {
			if e.ID == id {
				return true
			}
		}
		return false
	}

	if err := tk.AdvanceTo(4.5); err != nil {
		t.Fatal(err)
	}
	if !has(0, 1) || !has(1, 0) {
		t.Fatal("in-range neighbors not heard")
	}

	// Node 1 left at t=5; its last beacon heard by node 0 was at t=4. Within
	// the TTL (3 periods) it lingers as a ghost entry…
	if err := tk.AdvanceTo(6.9); err != nil {
		t.Fatal(err)
	}
	if !has(0, 1) {
		t.Fatal("entry expired before its TTL")
	}
	// …and past the TTL it ages out instead of ghosting forever.
	if err := tk.AdvanceTo(7.1); err != nil {
		t.Fatal(err)
	}
	if has(0, 1) {
		t.Fatal("expired entry still in table")
	}

	// Node 1 returns at t=12 and its next beacon re-advertises it.
	if err := tk.AdvanceTo(12.5); err != nil {
		t.Fatal(err)
	}
	if !has(0, 1) {
		t.Fatal("returned neighbor not re-beaconed into the table")
	}
	if e := tk.Tables()[0][0]; e.HeardAt != 12 || e.Pos != geom.Pt(100, 0) {
		t.Fatalf("refreshed entry = %+v", e)
	}
}

func TestTrackerRejectsBadInputs(t *testing.T) {
	pos := Static([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)})
	r := rand.New(rand.NewSource(1))
	if _, err := NewTracker(DefaultConfig(), 0, pos, 150, r); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewTracker(DefaultConfig(), 2, nil, 150, r); err == nil {
		t.Error("accepted nil position stream")
	}
	for _, rr := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewTracker(DefaultConfig(), 2, pos, rr, r); err == nil {
			t.Errorf("accepted radio range %v", rr)
		}
	}
	bad := DefaultConfig()
	bad.PeriodSec = 0
	if _, err := NewTracker(bad, 2, pos, 150, r); err == nil {
		t.Error("accepted invalid beacon config")
	}

	tk, err := NewTracker(DefaultConfig(), 2, pos, 150, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if err := tk.AdvanceTo(4); err == nil {
		t.Error("time moved backwards")
	}
	if err := tk.AdvanceTo(math.NaN()); err == nil {
		t.Error("accepted NaN time")
	}
}
