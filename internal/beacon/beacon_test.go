package beacon

import (
	"math"
	"math/rand"
	"testing"

	"gmp/internal/geom"
	"gmp/internal/mobility"
	"gmp/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if good.Validate() != nil {
		t.Fatal("default config should validate")
	}
	cases := []func(*Config){
		func(c *Config) { c.PeriodSec = 0 },
		func(c *Config) { c.JitterFrac = -0.1 },
		func(c *Config) { c.JitterFrac = 1 },
		func(c *Config) { c.TTLPeriods = 0 },
		func(c *Config) { c.BeaconBytes = 0 },
	}
	for i, mut := range cases {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if _, err := Tables(Config{}, 1, Static(nil), 100, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Tables must validate")
	}
}

func TestTablesStaticNetworkPerfect(t *testing.T) {
	// On a static deployment, after one full TTL window, every true
	// neighbor is present with exact positions and there are no ghosts.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(900, 900),
	}
	cfg := DefaultConfig()
	tables, err := Tables(cfg, len(pts), Static(pts), 150, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(tables, Static(pts), 150, 10)
	if acc.Missing != 0 || acc.Ghosts != 0 {
		t.Fatalf("static accuracy: %+v", acc)
	}
	if acc.MeanPosErrM != 0 {
		t.Fatalf("static position error = %v", acc.MeanPosErrM)
	}
	// Node 1 hears 0 and 2; node 3 hears nobody.
	if len(tables[1]) != 2 {
		t.Fatalf("node 1 table = %v", tables[1])
	}
	if len(tables[3]) != 0 {
		t.Fatalf("isolated node table = %v", tables[3])
	}
}

func TestTablesBeforeFirstBeacon(t *testing.T) {
	// Querying at t=0 (before any beacon with a positive phase) gives
	// near-empty tables — cold start.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0)}
	cfg := DefaultConfig()
	cfg.JitterFrac = 0.9
	tables, err := Tables(cfg, 2, Static(pts), 150, 0.0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	total := len(tables[0]) + len(tables[1])
	if total > 2 {
		t.Fatalf("cold start produced %d entries", total)
	}
}

func TestTablesMobileStaleness(t *testing.T) {
	// Under mobility, longer beacon periods must not improve accuracy:
	// position error grows with the beacon period.
	r := rand.New(rand.NewSource(5))
	initial := make([]geom.Point, 120)
	for i := range initial {
		initial[i] = geom.Pt(r.Float64()*1000, r.Float64()*1000)
	}
	mcfg := mobility.Config{Width: 1000, Height: 1000, SpeedMin: 5, SpeedMax: 15, Pause: 0}

	errAt := func(period float64) float64 {
		mr := rand.New(rand.NewSource(7))
		model, err := mobility.NewRandomWaypoint(initial, mcfg, mr)
		if err != nil {
			t.Fatal(err)
		}
		pos, err := Sampled(model, 0.25, 40)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.PeriodSec = period
		tables, err := Tables(cfg, len(initial), pos, 150, 35, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return Evaluate(tables, pos, 150, 35).MeanPosErrM
	}
	fast := errAt(0.5)
	slow := errAt(8)
	if fast <= 0 || slow <= 0 {
		t.Fatalf("position errors: fast=%v slow=%v", fast, slow)
	}
	if slow <= fast {
		t.Fatalf("slower beaconing should be staler: %v vs %v", slow, fast)
	}
}

func TestEnergyPerNodePerHour(t *testing.T) {
	cfg := DefaultConfig()
	radio := sim.DefaultRadioParams()
	// 1 Hz beacons, 32 B at 1 Mbps = 256 µs airtime. TX: 1.3 W; RX: 0.9 W
	// per neighbor heard. Mean degree 60 → per hour:
	// 3600 · 256e-6 · (1.3 + 0.9·60) = 50.97 J.
	got := EnergyPerNodePerHour(cfg, radio, 60)
	want := 3600 * 256e-6 * (1.3 + 0.9*60)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	// Faster beaconing costs proportionally more.
	cfg.PeriodSec = 0.5
	if got2 := EnergyPerNodePerHour(cfg, radio, 60); math.Abs(got2-2*got) > 1e-9 {
		t.Fatalf("half period should double energy: %v vs %v", got2, got)
	}
}

func TestSampledClamping(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	initial := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	model, err := mobility.NewRandomWaypoint(initial,
		mobility.Config{Width: 100, Height: 100, SpeedMin: 1, SpeedMax: 2, Pause: 0}, r)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := Sampled(model, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pos(-5); len(got) != 2 {
		t.Fatal("negative time should clamp")
	}
	if got := pos(1e9); len(got) != 2 {
		t.Fatal("far future should clamp")
	}
}

func TestSampledRejectsBadInputs(t *testing.T) {
	newModel := func() *mobility.Model {
		m, err := mobility.NewRandomWaypoint([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)},
			mobility.Config{Width: 100, Height: 100, SpeedMin: 1, SpeedMax: 2, Pause: 0},
			rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct{ dt, horizon float64 }{
		{0, 1}, {-0.5, 1}, {math.NaN(), 1}, {math.Inf(1), 1},
		{0.5, 0}, {0.5, -1}, {0.5, math.NaN()}, {0.5, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := Sampled(newModel(), c.dt, c.horizon); err == nil {
			t.Errorf("Sampled(dt=%v, horizon=%v) accepted", c.dt, c.horizon)
		}
	}
}

func TestTablesRejectsBadInputs(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	pos := Static(pts)
	r := rand.New(rand.NewSource(1))
	for _, rr := range []float64{0, -150, math.NaN(), math.Inf(1)} {
		if _, err := Tables(DefaultConfig(), 2, pos, rr, 10, r); err == nil {
			t.Errorf("Tables accepted radio range %v", rr)
		}
	}
	for _, at := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := Tables(DefaultConfig(), 2, pos, 150, at, r); err == nil {
			t.Errorf("Tables accepted time %v", at)
		}
	}
}
