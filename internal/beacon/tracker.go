package beacon

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Tracker maintains every node's neighbor table incrementally as virtual
// time advances: each emitter beacons on its jittered schedule, receivers in
// true range at emission time record the advertised position, and entries
// that go TTLPeriods × PeriodSec without a fresh beacon age out. This is the
// standing-workload counterpart of the one-shot Tables generator — a churn
// campaign advances one Tracker across session after session instead of
// rebuilding history from scratch — and the two agree exactly: for the same
// seed, AdvanceTo(at) followed by Tables() matches Tables(cfg, …, at, r)
// entry for entry (asserted by TestTrackerMatchesTables).
//
// Aging is what keeps live views honest under mobility: a neighbor that
// walked away stops being heard and falls out of the table after the TTL
// instead of lingering as a permanent ghost, while a neighbor still in range
// keeps re-advertising its (moving) position every period.
type Tracker struct {
	cfg    Config
	pos    PositionsAt
	r2     float64
	now    float64
	phases []float64
	nextK  []int           // per emitter: index of its next undelivered beacon
	heard  []map[int]Entry // receiver → emitter → newest heard beacon
}

// NewTracker builds a tracker over n nodes with true positions from pos and
// the given radio range. The generator drives only the per-node phase
// offsets — drawn exactly as Tables draws them, so the same seed yields the
// same beacon schedule. Time starts at 0 with empty tables; nothing has
// beaconed yet until the first AdvanceTo.
func NewTracker(cfg Config, n int, pos PositionsAt, radioRange float64, r *rand.Rand) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("beacon: tracker needs at least one node")
	}
	if math.IsNaN(radioRange) || math.IsInf(radioRange, 0) || radioRange <= 0 {
		return nil, fmt.Errorf("beacon: radio range %v not a finite positive number", radioRange)
	}
	if pos == nil {
		return nil, errors.New("beacon: tracker needs a position stream")
	}
	tk := &Tracker{
		cfg:    cfg,
		pos:    pos,
		r2:     radioRange * radioRange,
		phases: make([]float64, n),
		nextK:  make([]int, n),
		heard:  make([]map[int]Entry, n),
	}
	for i := range tk.phases {
		tk.phases[i] = r.Float64() * cfg.JitterFrac * cfg.PeriodSec
	}
	for i := range tk.heard {
		tk.heard[i] = make(map[int]Entry)
	}
	return tk, nil
}

// Now returns the tracker's current virtual time.
func (tk *Tracker) Now() float64 { return tk.now }

// ttl returns the entry lifetime in seconds.
func (tk *Tracker) ttl() float64 { return float64(tk.cfg.TTLPeriods) * tk.cfg.PeriodSec }

// AdvanceTo plays out all beacons in (Now, t] and ages out entries whose
// last beacon fell out of the TTL window. Time is monotonic: t must not be
// before Now.
func (tk *Tracker) AdvanceTo(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) || t < tk.now {
		return fmt.Errorf("beacon: cannot advance to %v from %v", t, tk.now)
	}
	n := len(tk.phases)
	for emitter := 0; emitter < n; emitter++ {
		for {
			bt := tk.phases[emitter] + float64(tk.nextK[emitter])*tk.cfg.PeriodSec
			if bt > t {
				break
			}
			tk.nextK[emitter]++
			snapshot := tk.pos(bt)
			ep := snapshot[emitter]
			for rcv := 0; rcv < n; rcv++ {
				if rcv == emitter {
					continue
				}
				if snapshot[rcv].Dist2(ep) <= tk.r2 {
					tk.heard[rcv][emitter] = Entry{ID: emitter, Pos: ep, HeardAt: bt}
				}
			}
		}
	}
	tk.now = t
	// Aging: prune entries whose newest beacon expired, so a departed
	// neighbor cannot linger as a permanent ghost.
	ttl := tk.ttl()
	for rcv := range tk.heard {
		for emitter, e := range tk.heard[rcv] {
			if t-e.HeardAt > ttl {
				delete(tk.heard[rcv], emitter)
			}
		}
	}
	return nil
}

// Tables snapshots every node's neighbor table as of Now, sorted by neighbor
// ID. The returned slices are fresh copies; advancing the tracker does not
// invalidate them.
func (tk *Tracker) Tables() [][]Entry {
	tables := make([][]Entry, len(tk.heard))
	for rcv := range tk.heard {
		if len(tk.heard[rcv]) == 0 {
			continue
		}
		tbl := make([]Entry, 0, len(tk.heard[rcv]))
		for _, e := range tk.heard[rcv] {
			tbl = append(tbl, e)
		}
		sort.Slice(tbl, func(a, b int) bool { return tbl[a].ID < tbl[b].ID })
		tables[rcv] = tbl
	}
	return tables
}
