package beacon

import (
	"math/rand"
	"testing"

	"gmp/internal/geom"
	"gmp/internal/planar"
	"gmp/internal/view"
)

// hasID reports whether id appears in ids.
func hasID(ids []int, id int) bool {
	for _, n := range ids {
		if n == id {
			return true
		}
	}
	return false
}

// TestMaskedOverAgedViews walks a blacklisted neighbor through the full
// aging lifecycle — heard, departed-but-ghosting, expired, re-beaconed —
// and asserts the engine's dead-link mask composes with every stage: the
// banned neighbor is unusable throughout, while the unmasked base view
// reflects aging honestly (present → absent → present again).
func TestMaskedOverAgedViews(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	// Node 1 leaves radio range at t=5 and returns at t=12 (twoNodeWalkabout).
	tk, err := NewTracker(cfg, 2, twoNodeWalkabout, 150, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	banned := map[int]bool{1: true} // the engine's per-session ban set, by reference
	wd := view.WatchdogLimits{MaxWalkHops: 40}

	views := func(at float64) (base, masked view.NodeView) {
		if err := tk.AdvanceTo(at); err != nil {
			t.Fatal(err)
		}
		self := twoNodeWalkabout(at)
		p := ViewsArmed(self, tk.Tables(), 150, planar.Gabriel, wd)
		b := p.At(0)
		return b, view.NewMasked(b, banned)
	}

	// Heard and in range: the base view has the neighbor, the mask hides it.
	base, masked := views(4.5)
	if !hasID(base.Neighbors(), 1) {
		t.Fatal("base view missing fresh neighbor")
	}
	if hasID(masked.Neighbors(), 1) || masked.Degree() != 0 {
		t.Fatal("mask leaked the banned neighbor")
	}
	// A ban is not amnesia: the advertised position stays known.
	if _, ok := masked.NbrPosOK(1); !ok {
		t.Fatal("mask erased position knowledge")
	}
	if got := masked.(view.WatchdogCarrier).PerimeterWatchdog(); got != wd {
		t.Fatalf("watchdog not delegated through the mask: %+v", got)
	}

	// Departed but within TTL: a ghost entry, still masked.
	base, masked = views(6.9)
	if !hasID(base.Neighbors(), 1) {
		t.Fatal("ghost entry expired early")
	}
	if hasID(masked.Neighbors(), 1) {
		t.Fatal("mask leaked the ghost entry")
	}

	// Expired: gone from the base view too, and position knowledge with it.
	base, masked = views(7.5)
	if hasID(base.Neighbors(), 1) {
		t.Fatal("expired entry still in base view")
	}
	if hasID(masked.Neighbors(), 1) {
		t.Fatal("mask resurrected an expired entry")
	}
	if _, ok := masked.NbrPosOK(1); ok {
		t.Fatal("expired entry still has a position")
	}

	// Re-beaconed: back in the base view; the session ban still filters it.
	base, masked = views(12.5)
	if !hasID(base.Neighbors(), 1) {
		t.Fatal("returned neighbor not re-beaconed into the base view")
	}
	if hasID(masked.Neighbors(), 1) || hasID(masked.PlanarNeighbors(), 1) {
		t.Fatal("session ban forgotten after re-beacon")
	}
}

// TestMaskedOverAdversarialTables replays PR 4's ghost-entry and one-sided-
// entry table corruptions through the live-view adapter and checks the mask
// composes with both.
func TestMaskedOverAdversarialTables(t *testing.T) {
	self := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0)}

	// Ghost entry: node 0's table advertises neighbor 1 at a position where
	// nobody lives anymore; node 1's table is empty (it heard no one).
	ghost := [][]Entry{
		{{ID: 1, Pos: geom.Pt(100, 0), HeardAt: 1}},
		nil,
		{{ID: 1, Pos: geom.Pt(100, 0), HeardAt: 1}},
	}
	p := ViewsArmed(self, ghost, 150, planar.Gabriel, view.WatchdogLimits{MaxWalkHops: 40})
	masked := view.NewMasked(p.At(0), map[int]bool{1: true})
	if masked.Degree() != 0 || len(masked.PlanarNeighbors()) != 0 {
		t.Fatal("mask leaked the ghost entry into an adjacency")
	}
	if _, ok := masked.NbrPosOK(1); !ok {
		t.Fatal("ghost's advertised position should remain known")
	}
	if av, ok := view.NodeView(masked).(view.AltPlanarView); !ok || hasID(av.AltPlanarNeighbors(), 1) {
		t.Fatal("mask leaked the ghost entry into the alternate planarization")
	}

	// One-sided entry: node 1 heard node 0, node 0 never heard node 1. The
	// receiver-side unknown (node 0) must report !ok, and masking node 1's
	// only usable neighbor leaves it isolated.
	oneSided := [][]Entry{
		nil,
		{{ID: 0, Pos: geom.Pt(0, 0), HeardAt: 1}},
		nil,
	}
	p = ViewsArmed(self, oneSided, 150, planar.Gabriel, view.WatchdogLimits{})
	if _, ok := p.At(0).NbrPosOK(1); ok {
		t.Fatal("node 0 should not know the one-sided sender")
	}
	masked = view.NewMasked(p.At(1), map[int]bool{0: true})
	if masked.Degree() != 0 || len(masked.PlanarNeighbors()) != 0 {
		t.Fatal("mask left the one-sided link usable")
	}
}
