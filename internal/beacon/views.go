package beacon

import (
	"gmp/internal/geom"
	"gmp/internal/planar"
	"gmp/internal/view"
)

// Views converts neighbor-table snapshots (as built by Tables) into a
// view.Provider the engine can route from: node i's view is its own true
// position plus exactly the neighbors its table holds, at whatever advertised
// positions the last heard beacons carried. Staleness, missing entries and
// ghost entries all flow straight into forwarding decisions — this is the
// live counterpart of the ideal oracle view.
//
// Each node's perimeter substrate is derived locally from its own table with
// the given planarization rule, as a real node would compute it.
func Views(selfPos []geom.Point, tables [][]Entry, radioRange float64, kind planar.Kind) view.Provider {
	return ViewsArmed(selfPos, tables, radioRange, kind, view.WatchdogLimits{})
}

// ViewsArmed is Views with the perimeter watchdog armed on every view. Aged
// or stale tables can leave neighboring local planarizations inconsistent,
// and a face traversal over disagreeing adjacencies may never terminate —
// any campaign routing over drifting tables wants the bound.
func ViewsArmed(selfPos []geom.Point, tables [][]Entry, radioRange float64, kind planar.Kind, wd view.WatchdogLimits) view.Provider {
	vt := make([][]view.Neighbor, len(tables))
	for i, tbl := range tables {
		nbrs := make([]view.Neighbor, len(tbl))
		for j, e := range tbl {
			nbrs[j] = view.Neighbor{ID: e.ID, Pos: e.Pos}
		}
		vt[i] = nbrs
	}
	return view.NewLive(selfPos, vt, view.LiveConfig{RadioRange: radioRange, Planarizer: kind, Watchdog: wd})
}
