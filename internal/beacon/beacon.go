// Package beacon models the HELLO protocol geographic routing silently
// assumes: every node periodically broadcasts its position; receivers keep
// neighbor tables whose entries expire after a few missed beacons. The
// paper's §2 grants each node knowledge of "the locations of its immediate
// neighbors" for free — this package prices that assumption: how accurate
// the tables are under mobility at a given beacon period, and how much
// energy the beaconing itself burns.
package beacon

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gmp/internal/geom"
	"gmp/internal/mobility"
	"gmp/internal/sim"
)

// Config parameterizes the HELLO protocol.
type Config struct {
	// PeriodSec is the beacon interval per node.
	PeriodSec float64
	// JitterFrac desynchronizes nodes: each node's phase offset is drawn
	// uniformly from [0, JitterFrac·Period).
	JitterFrac float64
	// TTLPeriods is how many periods an entry survives without a fresh
	// beacon (classical HELLO protocols use 2–4).
	TTLPeriods int
	// BeaconBytes is the on-air beacon size (ID + position + header).
	BeaconBytes int
}

// DefaultConfig matches common GPSR deployments: 1 s beacons, expiry after
// 3 missed, 32 B frames.
func DefaultConfig() Config {
	return Config{PeriodSec: 1, JitterFrac: 0.5, TTLPeriods: 3, BeaconBytes: 32}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PeriodSec <= 0 {
		return errors.New("beacon: period must be positive")
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return errors.New("beacon: jitter fraction must be in [0, 1)")
	}
	if c.TTLPeriods < 1 {
		return errors.New("beacon: TTL must be at least one period")
	}
	if c.BeaconBytes <= 0 {
		return errors.New("beacon: beacon size must be positive")
	}
	return nil
}

// Entry is one row of a node's neighbor table.
type Entry struct {
	// ID is the neighbor's identifier.
	ID int
	// Pos is the position the neighbor advertised in its last heard beacon
	// (stale under mobility).
	Pos geom.Point
	// HeardAt is the virtual time of that beacon.
	HeardAt float64
}

// PositionsAt returns every node's true position at virtual time t.
// Adapters wrap a static deployment or a mobility model.
type PositionsAt func(t float64) []geom.Point

// Static wraps a fixed deployment as a PositionsAt.
func Static(pts []geom.Point) PositionsAt {
	return func(float64) []geom.Point { return pts }
}

// Sampled pre-steps a mobility model in dt increments up to horizon and
// serves the nearest recorded snapshot for any queried time. The model is
// consumed (advanced to horizon). Non-positive or non-finite dt/horizon are
// rejected — a silently clamped step or an empty frame set would freeze the
// stream and quietly void whatever staleness an experiment meant to measure.
func Sampled(m *mobility.Model, dt, horizon float64) (PositionsAt, error) {
	if math.IsNaN(dt) || math.IsInf(dt, 0) || dt <= 0 {
		return nil, fmt.Errorf("beacon: sample step %v not a finite positive number", dt)
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return nil, fmt.Errorf("beacon: sample horizon %v not a finite positive number", horizon)
	}
	var frames [][]geom.Point
	frames = append(frames, m.Positions())
	steps := int(horizon/dt) + 1
	for i := 0; i < steps; i++ {
		m.Step(dt)
		frames = append(frames, m.Positions())
	}
	return func(t float64) []geom.Point {
		idx := int(t/dt + 0.5)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(frames) {
			idx = len(frames) - 1
		}
		return frames[idx]
	}, nil
}

// Tables materializes every node's neighbor table as of time `at`, given
// the true position history and radio range. A beacon emitted by node i at
// time t reaches node r iff their true positions at t are within range;
// the receiver records the advertised position. Entries older than
// TTL = TTLPeriods × Period have expired.
//
// The generator drives only the per-node phase offsets, so the same seed
// reproduces the same beacon schedule.
func Tables(cfg Config, n int, pos PositionsAt, radioRange, at float64, r *rand.Rand) ([][]Entry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(radioRange) || math.IsInf(radioRange, 0) || radioRange <= 0 {
		return nil, fmt.Errorf("beacon: radio range %v not a finite positive number", radioRange)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) || at < 0 {
		return nil, fmt.Errorf("beacon: table time %v not a finite non-negative number", at)
	}
	phases := make([]float64, n)
	for i := range phases {
		phases[i] = r.Float64() * cfg.JitterFrac * cfg.PeriodSec
	}
	ttl := float64(cfg.TTLPeriods) * cfg.PeriodSec

	tables := make([][]Entry, n)
	r2 := radioRange * radioRange

	// For each emitter, walk its beacons inside the TTL window (newest
	// first) and deliver to every receiver in true range at emission time.
	type heard struct {
		pos geom.Point
		t   float64
	}
	latest := make([]map[int]heard, n) // receiver -> emitter -> newest beacon
	for i := range latest {
		latest[i] = make(map[int]heard)
	}
	for emitter := 0; emitter < n; emitter++ {
		// Beacon times: phases[e] + k·Period ≤ at.
		k := int((at - phases[emitter]) / cfg.PeriodSec)
		for ; k >= 0; k-- {
			t := phases[emitter] + float64(k)*cfg.PeriodSec
			if t > at {
				continue
			}
			if at-t > ttl {
				break // older beacons are expired anyway
			}
			snapshot := pos(t)
			ep := snapshot[emitter]
			for rcv := 0; rcv < n; rcv++ {
				if rcv == emitter {
					continue
				}
				if _, ok := latest[rcv][emitter]; ok {
					continue // already have a newer beacon
				}
				if snapshot[rcv].Dist2(ep) <= r2 {
					latest[rcv][emitter] = heard{pos: ep, t: t}
				}
			}
		}
	}
	for rcv := 0; rcv < n; rcv++ {
		for emitter, h := range latest[rcv] {
			tables[rcv] = append(tables[rcv], Entry{ID: emitter, Pos: h.pos, HeardAt: h.t})
		}
	}
	return tables, nil
}

// Accuracy quantifies one node's table against the ground truth at time
// `at`.
type Accuracy struct {
	// Missing is the number of true neighbors absent from the table.
	Missing int
	// Ghosts is the number of table entries that are no longer in range.
	Ghosts int
	// TrueNeighbors is the ground-truth neighbor count.
	TrueNeighbors int
	// MeanPosErrM is the mean distance between advertised and true
	// positions over correct entries (0 when none).
	MeanPosErrM float64
}

// Evaluate compares every node's table against true geometry at time `at`
// and returns the aggregate over all nodes.
func Evaluate(tables [][]Entry, pos PositionsAt, radioRange, at float64) Accuracy {
	snapshot := pos(at)
	r2 := radioRange * radioRange
	var agg Accuracy
	var errSum float64
	var errCount int
	for rcv := range tables {
		inTable := make(map[int]Entry, len(tables[rcv]))
		for _, e := range tables[rcv] {
			inTable[e.ID] = e
		}
		for other := range snapshot {
			if other == rcv {
				continue
			}
			inRange := snapshot[rcv].Dist2(snapshot[other]) <= r2
			e, present := inTable[other]
			switch {
			case inRange && !present:
				agg.Missing++
			case !inRange && present:
				agg.Ghosts++
			case inRange && present:
				errSum += e.Pos.Dist(snapshot[other])
				errCount++
			}
			if inRange {
				agg.TrueNeighbors++
			}
		}
	}
	if errCount > 0 {
		agg.MeanPosErrM = errSum / float64(errCount)
	}
	return agg
}

// EnergyPerNodePerHour estimates the beaconing energy burden: each node
// transmits one beacon per period and listens to every neighbor's beacons,
// under the given radio parameters and mean degree.
func EnergyPerNodePerHour(cfg Config, radio sim.RadioParams, meanDegree float64) float64 {
	beaconsPerHour := 3600 / cfg.PeriodSec
	tx := radio.TxPowerW * radio.TxTimeBytes(cfg.BeaconBytes)
	rx := radio.RxPowerW * radio.TxTimeBytes(cfg.BeaconBytes) * meanDegree
	return beaconsPerHour * (tx + rx)
}
