package report

import (
	"strings"
	"testing"
	"time"

	"gmp/internal/stats"
)

func sampleTable() *stats.Table {
	return &stats.Table{
		Title:  "Figure 11 <total>",
		XLabel: "k",
		YLabel: "hops & more",
		Xs:     []float64{3, 5, 8},
		Series: []stats.Series{
			{Label: "GMP", Y: []float64{9.4, 13.3, 18.1}},
			{Label: "PBM", Y: []float64{10.5, 15.4, 21.7}},
		},
	}
}

func TestReportHTML(t *testing.T) {
	r := New("GMP reproduction", "seed 1")
	r.Add(sampleTable(), "paper claim here")
	r.Add(nil, "ignored")
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	html := r.HTML(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))
	for _, want := range []string{
		"<!DOCTYPE html>",
		"GMP reproduction",
		"Figure 11 &lt;total&gt;", // escaped
		"paper claim here",
		"<svg",
		"<table>",
		"<th>GMP</th>",
		"13.30",
		"generated 2026-07-04",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
}

func TestReportDeterministicWithoutTimestamp(t *testing.T) {
	mk := func() string {
		r := New("t", "")
		r.Add(sampleTable(), "")
		return r.HTML(time.Time{})
	}
	if mk() != mk() {
		t.Fatal("report not deterministic")
	}
	if strings.Contains(mk(), "generated") {
		t.Fatal("zero time must omit the footer")
	}
}

func TestHTMLTableRagged(t *testing.T) {
	tbl := sampleTable()
	tbl.Series[1].Y = tbl.Series[1].Y[:1]
	r := New("t", "")
	r.Add(tbl, "")
	if !strings.Contains(r.HTML(time.Time{}), "—") {
		t.Fatal("ragged cells should render a dash")
	}
}
