// Package report assembles experiment results into a self-contained HTML
// document with inline SVG charts and data tables — the artifact a
// reproduction run hands to a reader.
package report

import (
	"fmt"
	"strings"
	"time"

	"gmp/internal/stats"
	"gmp/internal/viz"
)

// Section is one figure of the report: a results table rendered as both a
// line chart and an HTML table, with optional commentary.
type Section struct {
	Table   *stats.Table
	Comment string
}

// Report is an ordered collection of sections with front matter.
type Report struct {
	Title    string
	Subtitle string
	sections []Section
}

// New creates an empty report.
func New(title, subtitle string) *Report {
	return &Report{Title: title, Subtitle: subtitle}
}

// Add appends a section. Nil tables are ignored so callers can pass
// optional results unconditionally.
func (r *Report) Add(t *stats.Table, comment string) {
	if t == nil {
		return
	}
	r.sections = append(r.sections, Section{Table: t, Comment: comment})
}

// Len returns the number of sections.
func (r *Report) Len() int { return len(r.sections) }

// HTML renders the full document. generated stamps the footer; pass the
// zero time to omit it (deterministic output for tests).
func (r *Report) HTML(generated time.Time) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", esc(r.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 920px; margin: 2em auto; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.85em; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f5f5f5; }
p.comment { color: #444; }
footer { margin-top: 3em; color: #888; font-size: 0.8em; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(r.Title))
	if r.Subtitle != "" {
		fmt.Fprintf(&b, "<p>%s</p>\n", esc(r.Subtitle))
	}
	for _, s := range r.sections {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", esc(s.Table.Title))
		if s.Comment != "" {
			fmt.Fprintf(&b, "<p class=\"comment\">%s</p>\n", esc(s.Comment))
		}
		b.WriteString(viz.LineChart(s.Table, viz.DefaultChartOptions()))
		b.WriteString(htmlTable(s.Table))
	}
	if !generated.IsZero() {
		fmt.Fprintf(&b, "<footer>generated %s</footer>\n", generated.Format(time.RFC3339))
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// htmlTable renders the numeric table under each chart.
func htmlTable(t *stats.Table) string {
	var b strings.Builder
	b.WriteString("<table><tr>")
	fmt.Fprintf(&b, "<th>%s</th>", esc(t.XLabel))
	for _, s := range t.Series {
		fmt.Fprintf(&b, "<th>%s</th>", esc(s.Label))
	}
	b.WriteString("</tr>\n")
	for i, x := range t.Xs {
		b.WriteString("<tr>")
		fmt.Fprintf(&b, "<td>%g</td>", x)
		for _, s := range t.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "<td>%.2f</td>", s.Y[i])
			} else {
				b.WriteString("<td>—</td>")
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return b.String()
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
