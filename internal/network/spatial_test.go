package network

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gmp/internal/geom"
)

// bruteClosest is the reference O(n) scan ClosestNode replaced: strict `<`
// over nodes in ID order, so the lowest ID wins exact distance ties.
func bruteClosest(nw *Network, p geom.Point) int {
	best, bestD := -1, math.Inf(1)
	for _, n := range nw.nodes {
		if d := n.Pos.Dist2(p); d < bestD {
			best, bestD = n.ID, d
		}
	}
	return best
}

// bruteDisk is the reference O(n) scan NodesInDisk replaced.
func bruteDisk(nw *Network, p geom.Point, radius float64) []int {
	var out []int
	r2 := radius * radius
	for _, n := range nw.nodes {
		if n.Pos.Dist2(p) <= r2 {
			out = append(out, n.ID)
		}
	}
	return out
}

// randomTestNet deploys a uniform network; every trial varies density so the
// grid sees empty, sparse and crowded cells.
func randomTestNet(t *testing.T, r *rand.Rand, n int, w, h, rng float64) *Network {
	t.Helper()
	nw, err := New(DeployUniform(n, w, h, r), w, h, rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// queryPoint draws a point over an area 40% larger than the region on every
// side, so queries regularly fall outside the grid (cellOf clamps them).
func queryPoint(r *rand.Rand, w, h float64) geom.Point {
	return geom.Pt((r.Float64()*1.8-0.4)*w, (r.Float64()*1.8-0.4)*h)
}

func TestClosestNodeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 60, 400, 1200} {
		nw := randomTestNet(t, r, n, 900, 600, 120)
		for q := 0; q < 400; q++ {
			p := queryPoint(r, 900, 600)
			want := bruteClosest(nw, p)
			if got := nw.ClosestNode(p); got != want {
				t.Fatalf("n=%d ClosestNode(%v) = %d, brute force = %d", n, p, got, want)
			}
		}
		// Exactly on node positions and far corners.
		for _, p := range []geom.Point{nw.Pos(0), geom.Pt(-500, -500), geom.Pt(5000, 5000)} {
			if got, want := nw.ClosestNode(p), bruteClosest(nw, p); got != want {
				t.Fatalf("n=%d ClosestNode(%v) = %d, brute force = %d", n, p, got, want)
			}
		}
	}
}

func TestClosestNodeTieBreaksLowestID(t *testing.T) {
	// Four nodes symmetric around the query point, two radio ranges apart so
	// they land in different grid cells: every pair ties exactly and ID 0
	// must win, as it does under a full scan in ID order.
	pts := []geom.Point{
		geom.Pt(100, 300), geom.Pt(500, 300), geom.Pt(300, 100), geom.Pt(300, 500),
	}
	nw, err := New(FromPoints(pts), 600, 600, 100)
	if err != nil {
		t.Fatal(err)
	}
	center := geom.Pt(300, 300)
	if got, want := nw.ClosestNode(center), bruteClosest(nw, center); got != want || got != 0 {
		t.Fatalf("ClosestNode tie = %d, want %d (lowest ID)", got, want)
	}
}

func TestClosestNodeOutOfRegionNodes(t *testing.T) {
	// Nodes beyond the declared region clamp into border cells; queries near
	// them must still find them.
	pts := []geom.Point{
		geom.Pt(50, 50), geom.Pt(250, 180), geom.Pt(380, -90), geom.Pt(-60, 140),
	}
	nw, err := New(FromPoints(pts), 300, 200, 80)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for q := 0; q < 300; q++ {
		p := queryPoint(r, 300, 200)
		if got, want := nw.ClosestNode(p), bruteClosest(nw, p); got != want {
			t.Fatalf("ClosestNode(%v) = %d, brute force = %d", p, got, want)
		}
	}
}

func TestNodesInDiskMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 40, 300, 1000} {
		nw := randomTestNet(t, r, n, 800, 800, 150)
		for q := 0; q < 300; q++ {
			p := queryPoint(r, 800, 800)
			radius := r.Float64() * 400
			want := bruteDisk(nw, p, radius)
			got := nw.NodesInDisk(p, radius)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d NodesInDisk(%v, %v) = %v, brute force = %v", n, p, radius, got, want)
			}
		}
		// Degenerate radii: zero (only exact hits) and region-covering.
		for _, radius := range []float64{0, 5000} {
			p := queryPoint(r, 800, 800)
			if got, want := nw.NodesInDisk(p, radius), bruteDisk(nw, p, radius); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d NodesInDisk(%v, %v) = %v, brute force = %v", n, p, radius, got, want)
			}
		}
		// Zero radius exactly on a node still returns that node.
		if got := nw.NodesInDisk(nw.Pos(0), 0); len(got) == 0 {
			t.Fatal("NodesInDisk(node pos, 0) missed the node itself")
		}
	}
}

func TestNodesInDiskOutOfRegionNodes(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(10, 10), geom.Pt(90, 90), geom.Pt(160, 40), geom.Pt(-30, 70), geom.Pt(70, 220),
	}
	nw, err := New(FromPoints(pts), 100, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	for q := 0; q < 300; q++ {
		p := queryPoint(r, 100, 100)
		radius := r.Float64() * 250
		if got, want := nw.NodesInDisk(p, radius), bruteDisk(nw, p, radius); !reflect.DeepEqual(got, want) {
			t.Fatalf("NodesInDisk(%v, %v) = %v, brute force = %v", p, radius, got, want)
		}
	}
}
