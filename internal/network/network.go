// Package network implements the paper's §2 wireless sensor network model: a
// set of nodes with known coordinates in a rectangular region, communicating
// over unit-disk radio links. Node locations double as identifiers and
// network addresses; there is no separate ID-establishment protocol.
//
// The package provides seeded uniform deployment, a grid spatial index for
// fast neighbor queries, adjacency precomputation, and connectivity probes.
package network

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"gmp/internal/geom"
	"gmp/internal/steiner"
)

// Node is a sensor node: an identifier plus a position. The position is the
// node's address in the geographic routing scheme.
type Node struct {
	ID  int
	Pos geom.Point
}

// Network is an immutable snapshot of a deployed sensor field with unit-disk
// connectivity of a fixed radio range. Build one with New; all query methods
// are safe for concurrent use afterwards.
type Network struct {
	nodes  []Node
	rng    float64 // radio range
	width  float64
	height float64

	cellSize float64
	cols     int
	rows     int
	cells    [][]int // cell index -> node IDs

	// Coarse tile layer above the cells: tileSpan×tileSpan blocks of grid
	// cells, the unit of spatial decomposition the sharded simulation kernel
	// partitions work by. The tiling is a pure function of the region
	// geometry and radio range — never of how many workers will process it —
	// which is what lets the kernel stay byte-identical for any shard count.
	tileCols int
	tileRows int
	tiles    [][]int // tile index -> node IDs, ascending
	nodeTile []int32 // node ID -> tile index

	adj [][]int // node ID -> sorted neighbor IDs

	// down marks nodes with failed radios in degraded views produced by
	// WithFailures; nil in a freshly built network.
	down []bool

	// reported, when non-nil, overlays the positions nodes *believe* they
	// are at (WithPositionNoise); physics keeps using true positions.
	reported []geom.Point
}

// Validation errors returned by New.
var (
	ErrNoNodes       = errors.New("network: no nodes")
	ErrBadRange      = errors.New("network: radio range must be positive")
	ErrBadDimensions = errors.New("network: region dimensions must be positive")
)

// New builds a network over the given nodes in a width×height region with
// the given radio range. Node IDs must equal their slice index (deployments
// from this package guarantee that).
func New(nodes []Node, width, height, radioRange float64) (*Network, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	if radioRange <= 0 {
		return nil, ErrBadRange
	}
	if width <= 0 || height <= 0 {
		return nil, ErrBadDimensions
	}
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("network: node at index %d has ID %d; IDs must be dense", i, n.ID)
		}
	}
	owned := make([]Node, len(nodes))
	copy(owned, nodes)

	nw := &Network{
		nodes:    owned,
		rng:      radioRange,
		width:    width,
		height:   height,
		cellSize: radioRange,
		cols:     int(math.Ceil(width/radioRange)) + 1,
		rows:     int(math.Ceil(height/radioRange)) + 1,
	}
	nw.cells = make([][]int, nw.cols*nw.rows)
	for _, n := range owned {
		c := nw.cellOf(n.Pos)
		nw.cells[c] = append(nw.cells[c], n.ID)
	}
	nw.buildTiles()
	nw.buildAdjacency()
	return nw, nil
}

// TileSpan is the tile edge length in grid cells: a tile covers a
// TileSpan×TileSpan block of cells, i.e. a square of TileSpan radio ranges
// per side. The constant is frozen — the sharded kernel's event order ties
// break on tile indices, so changing it changes every sharded run.
const TileSpan = 4

// buildTiles derives the coarse tile layer from the cell grid: tile (tx, ty)
// covers cells [tx·TileSpan, (tx+1)·TileSpan) × [ty·TileSpan, (ty+1)·TileSpan).
// Cell membership already owns the border conventions (cellOf clamps and
// assigns a coordinate exactly on a cell edge to the higher cell), so a node
// exactly on a tile border belongs to exactly one tile, consistently with its
// cell.
func (nw *Network) buildTiles() {
	nw.tileCols = (nw.cols + TileSpan - 1) / TileSpan
	nw.tileRows = (nw.rows + TileSpan - 1) / TileSpan
	nw.tiles = make([][]int, nw.tileCols*nw.tileRows)
	nw.nodeTile = make([]int32, len(nw.nodes))
	for _, n := range nw.nodes {
		c := nw.cellOf(n.Pos)
		cx, cy := c%nw.cols, c/nw.cols
		t := (cy/TileSpan)*nw.tileCols + cx/TileSpan
		nw.nodeTile[n.ID] = int32(t)
	}
	// Nodes are iterated in ID order above, but build the per-tile lists in a
	// second pass so each list is ascending by construction.
	for id := range nw.nodes {
		t := nw.nodeTile[id]
		nw.tiles[t] = append(nw.tiles[t], id)
	}
}

// Tiles returns the number of coarse spatial tiles. The tiling depends only
// on the region geometry and radio range (TileSpan cells per side), so it is
// identical for every network built over the same region.
func (nw *Network) Tiles() int { return len(nw.tiles) }

// Tile returns the tile index of node id.
func (nw *Network) Tile(id int) int { return int(nw.nodeTile[id]) }

// TileNodes returns the IDs of the nodes in tile t, ascending. The returned
// slice is shared; callers must not mutate it.
func (nw *Network) TileNodes(t int) []int { return nw.tiles[t] }

func (nw *Network) cellOf(p geom.Point) int {
	cx := int(p.X / nw.cellSize)
	cy := int(p.Y / nw.cellSize)
	cx = clampInt(cx, 0, nw.cols-1)
	cy = clampInt(cy, 0, nw.rows-1)
	return cy*nw.cols + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// adjParallelThreshold is the node count above which buildAdjacency fans out
// over all CPUs. Small networks stay on the serial path: the goroutine setup
// would dominate, and tests compare the two paths for equivalence anyway.
const adjParallelThreshold = 4096

// buildAdjacency precomputes sorted unit-disk neighbor lists using the grid:
// candidates for a node can only lie in its own or the eight adjacent cells.
// Each node's list is an independent, deterministic function of the (already
// built) cell index, so large networks compute rows in parallel chunks —
// byte-identical to the serial build, just faster (a 10⁶-node deployment
// would otherwise spend most of an E-X10 arm's setup here).
func (nw *Network) buildAdjacency() {
	nw.adj = make([][]int, len(nw.nodes))
	workers := runtime.NumCPU()
	if len(nw.nodes) < adjParallelThreshold || workers < 2 {
		nw.buildAdjacencyRange(0, len(nw.nodes))
		return
	}
	chunk := (len(nw.nodes) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(nw.nodes); lo += chunk {
		hi := lo + chunk
		if hi > len(nw.nodes) {
			hi = len(nw.nodes)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			nw.buildAdjacencyRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// buildAdjacencyRange fills adjacency rows for node IDs in [lo, hi). Rows are
// disjoint across ranges, so concurrent calls on disjoint ranges are safe.
func (nw *Network) buildAdjacencyRange(lo, hi int) {
	r2 := nw.rng * nw.rng
	for _, n := range nw.nodes[lo:hi] {
		cx := clampInt(int(n.Pos.X/nw.cellSize), 0, nw.cols-1)
		cy := clampInt(int(n.Pos.Y/nw.cellSize), 0, nw.rows-1)
		var nbrs []int
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || x >= nw.cols || y < 0 || y >= nw.rows {
					continue
				}
				for _, id := range nw.cells[y*nw.cols+x] {
					if id == n.ID {
						continue
					}
					if n.Pos.Dist2(nw.nodes[id].Pos) <= r2 {
						nbrs = append(nbrs, id)
					}
				}
			}
		}
		sort.Ints(nbrs)
		nw.adj[n.ID] = nbrs
	}
}

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.nodes) }

// Range returns the radio range.
func (nw *Network) Range() float64 { return nw.rng }

// Width returns the region width in meters.
func (nw *Network) Width() float64 { return nw.width }

// Height returns the region height in meters.
func (nw *Network) Height() float64 { return nw.height }

// Node returns the node with the given ID.
func (nw *Network) Node(id int) Node { return nw.nodes[id] }

// Pos returns the position of node id as the node itself reports it. It
// equals the true position except in views built with WithPositionNoise.
func (nw *Network) Pos(id int) geom.Point {
	if nw.reported != nil {
		return nw.reported[id]
	}
	return nw.nodes[id].Pos
}

// Dist returns the Euclidean distance between the reported positions of
// nodes a and b.
func (nw *Network) Dist(a, b int) float64 { return nw.Pos(a).Dist(nw.Pos(b)) }

// Neighbors returns the IDs of all nodes within radio range of node id,
// sorted ascending. The returned slice is shared; callers must not mutate it.
func (nw *Network) Neighbors(id int) []int { return nw.adj[id] }

// Degree returns the number of neighbors of node id.
func (nw *Network) Degree(id int) int { return len(nw.adj[id]) }

// AvgDegree returns the mean neighbor count over all nodes.
func (nw *Network) AvgDegree() float64 {
	var total int
	for _, a := range nw.adj {
		total += len(a)
	}
	return float64(total) / float64(len(nw.nodes))
}

// InRange reports whether nodes a and b can hear each other: geometrically
// within radio range and both radios alive.
func (nw *Network) InRange(a, b int) bool {
	if !nw.Alive(a) || !nw.Alive(b) {
		return false
	}
	return nw.nodes[a].Pos.Dist2(nw.nodes[b].Pos) <= nw.rng*nw.rng
}

// bestInCell scans one grid cell for a node closer to p than (best, bestD),
// preferring the lower ID on exact distance ties. Cells hold IDs in
// ascending order, so the in-cell scan already matches a full ID-order scan.
func (nw *Network) bestInCell(ci int, p geom.Point, best int, bestD float64) (int, float64) {
	for _, id := range nw.cells[ci] {
		if d := nw.nodes[id].Pos.Dist2(p); d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best, bestD
}

// ClosestNode returns the ID of the node closest to p (the lowest ID on
// exact distance ties, matching a full scan in ID order). It expands
// Chebyshev rings of grid cells around p's cell instead of scanning all
// nodes: geocast source selection and perimeter fallback call this per
// packet.
func (nw *Network) ClosestNode(p geom.Point) int {
	cx := clampInt(int(p.X/nw.cellSize), 0, nw.cols-1)
	cy := clampInt(int(p.Y/nw.cellSize), 0, nw.rows-1)
	best, bestD := nw.bestInCell(cy*nw.cols+cx, p, -1, math.Inf(1))
	// cols+rows rings reach every cell from any start, even a corner.
	for r := 1; r <= nw.cols+nw.rows; r++ {
		if best != -1 {
			// Every point of a ring-r cell is at least (r-1)·cellSize from p:
			// p projects into its (clamped) center cell, projection onto the
			// grid rectangle only shrinks distances, and r-1 full cell widths
			// separate the projection from ring r. Strict `>` (not `>=`)
			// keeps scanning while an exactly-tied farther node with a lower
			// ID could still exist, preserving the full-scan tie-break.
			if lb := float64(r-1) * nw.cellSize; lb*lb > bestD {
				break
			}
		}
		x0, x1 := cx-r, cx+r
		y0, y1 := cy-r, cy+r
		for x := x0; x <= x1; x++ { // top and bottom edges of the ring
			if x < 0 || x >= nw.cols {
				continue
			}
			if y0 >= 0 {
				best, bestD = nw.bestInCell(y0*nw.cols+x, p, best, bestD)
			}
			if y1 < nw.rows {
				best, bestD = nw.bestInCell(y1*nw.cols+x, p, best, bestD)
			}
		}
		for y := y0 + 1; y < y1; y++ { // left and right edges, corners done
			if y < 0 || y >= nw.rows {
				continue
			}
			if x0 >= 0 {
				best, bestD = nw.bestInCell(y*nw.cols+x0, p, best, bestD)
			}
			if x1 < nw.cols {
				best, bestD = nw.bestInCell(y*nw.cols+x1, p, best, bestD)
			}
		}
	}
	return best
}

// NodesInDisk returns the IDs of all nodes within radius of p, sorted. Only
// the grid cells overlapping the disk's bounding box are scanned. Positions
// outside the region clamp to border cells, and the clamped box bounds are
// monotone in the coordinates, so out-of-region nodes are still found.
func (nw *Network) NodesInDisk(p geom.Point, radius float64) []int {
	var out []int
	if radius < 0 {
		return out
	}
	r2 := radius * radius
	x0 := clampInt(int((p.X-radius)/nw.cellSize), 0, nw.cols-1)
	x1 := clampInt(int((p.X+radius)/nw.cellSize), 0, nw.cols-1)
	y0 := clampInt(int((p.Y-radius)/nw.cellSize), 0, nw.rows-1)
	y1 := clampInt(int((p.Y+radius)/nw.cellSize), 0, nw.rows-1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, id := range nw.cells[y*nw.cols+x] {
				if nw.nodes[id].Pos.Dist2(p) <= r2 {
					out = append(out, id)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Graph returns the unit-disk connectivity graph in the representation
// expected by the steiner package's KMB heuristic.
func (nw *Network) Graph() steiner.Graph {
	return steiner.Graph{N: len(nw.nodes), Adj: nw.adj}
}

// Connected reports whether the unit-disk graph is connected.
func (nw *Network) Connected() bool {
	return len(nw.ReachableFrom(0)) == len(nw.nodes)
}

// ReachableFrom returns the set of node IDs reachable from src over radio
// links, as a sorted slice including src itself.
func (nw *Network) ReachableFrom(src int) []int {
	seen := make([]bool, len(nw.nodes))
	seen[src] = true
	queue := []int{src}
	out := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range nw.adj[v] {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
				queue = append(queue, w)
			}
		}
	}
	sort.Ints(out)
	return out
}

// HopDistances returns BFS hop counts from src to every node; unreachable
// nodes get -1.
func (nw *Network) HopDistances(src int) []int {
	dist := make([]int, len(nw.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range nw.adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
