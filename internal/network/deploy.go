package network

import (
	"math"
	"math/rand"

	"gmp/internal/geom"
)

// DeployUniform places n nodes uniformly at random in the width×height
// region, reproducing the paper's §5 deployment ("the 1000 nodes are
// uniformly distributed in the network"). The generator is caller-supplied
// so whole experiments are reproducible from a single seed.
func DeployUniform(n int, width, height float64, r *rand.Rand) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, Pos: geom.Pt(r.Float64()*width, r.Float64()*height)}
	}
	return nodes
}

// DeployGrid places nodes on a cols×rows lattice with the given spacing,
// starting at the origin corner offset by half a spacing. Deterministic;
// used by tests that need known topologies.
func DeployGrid(cols, rows int, spacing float64) []Node {
	nodes := make([]Node, 0, cols*rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			nodes = append(nodes, Node{
				ID:  len(nodes),
				Pos: geom.Pt(spacing/2+float64(x)*spacing, spacing/2+float64(y)*spacing),
			})
		}
	}
	return nodes
}

// DeployUniformExclude deploys like DeployUniform but rejects positions for
// which exclude returns true, carving obstacles (voids) into the field.
// Rejection sampling keeps the remaining density uniform.
func DeployUniformExclude(n int, width, height float64, exclude func(geom.Point) bool, r *rand.Rand) []Node {
	nodes := make([]Node, 0, n)
	for len(nodes) < n {
		p := geom.Pt(r.Float64()*width, r.Float64()*height)
		if exclude(p) {
			continue
		}
		nodes = append(nodes, Node{ID: len(nodes), Pos: p})
	}
	return nodes
}

// DeployUniformWithVoid deploys like DeployUniform but rejects positions
// inside the disk of the given radius around center, creating a routing void.
// Used to exercise perimeter-mode recovery.
func DeployUniformWithVoid(n int, width, height float64, center geom.Point, radius float64, r *rand.Rand) []Node {
	return DeployUniformExclude(n, width, height, func(p geom.Point) bool {
		return p.Dist(center) < radius
	}, r)
}

// CShapedObstacle returns an exclusion predicate describing a thick annular
// wall around center that is open only on the west side: a concave trap for
// greedy geographic forwarding. Packets traveling east into the pocket reach
// a local minimum and can only escape via perimeter routing. innerR and
// outerR bound the wall; make the wall thicker than the radio range so it
// cannot be jumped.
func CShapedObstacle(center geom.Point, innerR, outerR float64) func(geom.Point) bool {
	return func(p geom.Point) bool {
		d := p.Dist(center)
		if d < innerR || d > outerR {
			return false
		}
		// Wall present except for the western opening (|angle| > 120°).
		ang := geom.Bearing(center, p)
		return ang > -2*math.Pi/3 && ang < 2*math.Pi/3
	}
}

// CombObstacle returns an exclusion predicate describing a comb of
// alternating wall teeth spanning the rectangle [x0,x1]×[y0,y1]: even teeth
// grow from the bottom edge, odd teeth from the top, each stopping gap short
// of the opposite edge. The only free path past the comb snakes around every
// tooth, so greedy forwarding toward a destination behind it stalls in a
// local minimum at each tooth. Make thickness larger than the radio range so
// teeth cannot be jumped, and gap comfortably larger than the radio range so
// the serpentine corridor stays connected.
func CombObstacle(x0, x1, y0, y1 float64, teeth int, thickness, gap float64) func(geom.Point) bool {
	pitch := (x1 - x0) / float64(teeth+1)
	return func(p geom.Point) bool {
		if p.X < x0 || p.X > x1 || p.Y < y0 || p.Y > y1 {
			return false
		}
		for i := 0; i < teeth; i++ {
			cx := x0 + float64(i+1)*pitch
			if math.Abs(p.X-cx) > thickness/2 {
				continue
			}
			if i%2 == 0 {
				// Bottom tooth: wall except for the top gap.
				if p.Y < y1-gap {
					return true
				}
			} else if p.Y > y0+gap {
				// Top tooth: wall except for the bottom gap.
				return true
			}
		}
		return false
	}
}

// SpiralObstacle returns an exclusion predicate describing an Archimedean
// spiral wall winding the given number of turns around center out to maxR.
// The only free path to the spiral's core is the corridor between successive
// windings, traversed from the outside in — the worst case for greedy
// forwarding, which aims straight at the core and stalls against every
// winding. Make thickness larger than the radio range so the wall cannot be
// jumped; the corridor width is roughly maxR/turns − thickness and must stay
// comfortably above the radio range. The disk of radius thickness/2 around
// center is kept clear so a destination can sit at the core.
func SpiralObstacle(center geom.Point, turns int, maxR, thickness float64) func(geom.Point) bool {
	// Radial growth per radian of winding angle.
	b := maxR / (2 * math.Pi * float64(turns))
	return func(p geom.Point) bool {
		d := p.Dist(center)
		if d > maxR || d < thickness/2 {
			return false
		}
		ang := geom.Bearing(center, p)
		for k := 0; k <= turns; k++ {
			armR := b * (ang + math.Pi + 2*math.Pi*float64(k))
			if armR > maxR+thickness/2 {
				break
			}
			if math.Abs(d-armR) < thickness/2 {
				return true
			}
		}
		return false
	}
}

// FromPoints wraps explicit coordinates as nodes with dense IDs. Useful for
// golden-topology tests reproducing the paper's figures.
func FromPoints(pts []geom.Point) []Node {
	nodes := make([]Node, len(pts))
	for i, p := range pts {
		nodes[i] = Node{ID: i, Pos: p}
	}
	return nodes
}
