package network

import "gmp/internal/geom"

// NodesInDisk returns the IDs of the nodes inside the disk at center with
// the given radius, sorted ascending. Geocast tasks use this as the
// destination set handed to the engine for delivery accounting.
func NodesInDisk(nw *Network, center geom.Point, radius float64) []int {
	return NodesInRegion(nw, geom.Disk{C: center, R: radius})
}

// NodesInRegion returns the IDs of the nodes inside an arbitrary region,
// sorted ascending.
func NodesInRegion(nw *Network, region geom.Region) []int {
	var out []int
	for id := 0; id < nw.Len(); id++ {
		if region.Contains(nw.Pos(id)) {
			out = append(out, id)
		}
	}
	return out
}
