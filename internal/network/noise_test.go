package network

import (
	"math"
	"math/rand"
	"testing"
)

func TestWithPositionNoiseSeparatesReportedFromTrue(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	nw, err := New(DeployUniform(200, 1000, 1000, r), 1000, 1000, 150)
	if err != nil {
		t.Fatal(err)
	}
	noisy := nw.WithPositionNoise(20, rand.New(rand.NewSource(1)))

	// Physics unchanged: adjacency identical, InRange driven by true
	// geometry.
	for id := 0; id < nw.Len(); id++ {
		a, b := nw.Neighbors(id), noisy.Neighbors(id)
		if len(a) != len(b) {
			t.Fatalf("adjacency changed for node %d", id)
		}
		if !noisy.TruePos(id).Eq(nw.Pos(id)) {
			t.Fatalf("true position changed for node %d", id)
		}
	}

	// Reported positions perturbed with roughly the right magnitude.
	var sum, sum2 float64
	for id := 0; id < nw.Len(); id++ {
		d := noisy.Pos(id).Dist(noisy.TruePos(id))
		sum += d
		sum2 += d * d
	}
	mean := sum / float64(nw.Len())
	// For isotropic Gaussian noise the expected offset is sigma·sqrt(π/2)
	// ≈ 1.25σ... the Rayleigh mean is σ·sqrt(π/2) ≈ 25.07 for σ=20.
	want := 20 * math.Sqrt(math.Pi/2)
	if mean < want*0.8 || mean > want*1.2 {
		t.Fatalf("mean offset %v, want ≈%v", mean, want)
	}
}

func TestWithPositionNoiseZeroSigma(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	nw, err := New(DeployUniform(50, 500, 500, r), 500, 500, 150)
	if err != nil {
		t.Fatal(err)
	}
	noisy := nw.WithPositionNoise(0, rand.New(rand.NewSource(2)))
	for id := 0; id < nw.Len(); id++ {
		if !noisy.Pos(id).Eq(nw.Pos(id)) {
			t.Fatalf("sigma=0 must not move node %d", id)
		}
	}
}

func TestWithPositionNoiseOriginalUntouched(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	nw, err := New(DeployUniform(50, 500, 500, r), 500, 500, 150)
	if err != nil {
		t.Fatal(err)
	}
	before := nw.Pos(7)
	_ = nw.WithPositionNoise(30, rand.New(rand.NewSource(3)))
	if !nw.Pos(7).Eq(before) {
		t.Fatal("original positions mutated")
	}
}

func TestNoiseComposesWithFailures(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	nw, err := New(DeployUniform(100, 500, 500, r), 500, 500, 150)
	if err != nil {
		t.Fatal(err)
	}
	view := nw.WithFailures([]int{5}).WithPositionNoise(10, rand.New(rand.NewSource(4)))
	if view.Alive(5) {
		t.Fatal("failure lost through noise overlay")
	}
	if view.Pos(6).Eq(nw.Pos(6)) {
		t.Fatal("noise lost through composition")
	}
	if !view.TruePos(6).Eq(nw.Pos(6)) {
		t.Fatal("true position lost")
	}
}
