package network

import "sort"

// WithFailures returns a degraded view of the network in which the given
// nodes' radios are dead: they keep their IDs and positions (so addressing
// stays stable) but have no links — they can neither send, receive, nor
// relay. The original network is unchanged.
//
// This models crash/battery failures for robustness experiments; protocols
// see the failure only through the adjacency (exactly as a real node would:
// a dead neighbor simply stops being heard).
func (nw *Network) WithFailures(failed []int) *Network {
	down := make([]bool, len(nw.nodes))
	for _, id := range failed {
		if id >= 0 && id < len(down) {
			down[id] = true
		}
	}
	clone := &Network{
		nodes:    nw.nodes, // immutable, shared
		rng:      nw.rng,
		width:    nw.width,
		height:   nw.height,
		cellSize: nw.cellSize,
		cols:     nw.cols,
		rows:     nw.rows,
		cells:    nw.cells, // shared; filtered during adjacency rebuild
		down:     down,
	}
	clone.adj = make([][]int, len(nw.nodes))
	for id, nbrs := range nw.adj {
		if down[id] {
			continue // dead node: no links at all
		}
		kept := make([]int, 0, len(nbrs))
		for _, n := range nbrs {
			if !down[n] {
				kept = append(kept, n)
			}
		}
		clone.adj[id] = kept
	}
	return clone
}

// Alive reports whether node id has a working radio in this view.
func (nw *Network) Alive(id int) bool {
	return len(nw.down) == 0 || !nw.down[id]
}

// AliveIDs returns the sorted IDs of all nodes with working radios.
func (nw *Network) AliveIDs() []int {
	out := make([]int, 0, len(nw.nodes))
	for id := range nw.nodes {
		if nw.Alive(id) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
