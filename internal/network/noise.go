package network

import (
	"math/rand"

	"gmp/internal/geom"
)

// WithPositionNoise returns a view of the network in which every node
// *reports* a position perturbed by isotropic Gaussian noise with the given
// standard deviation (meters), while the radio physics — adjacency, ranges,
// listener counts — keep using the true positions.
//
// This models localization error: the paper's §2 assumes each node knows
// its coordinates "through an internal GPS device or through a separate
// calibration process", both of which err in practice. Geographic routing
// decisions (greedy progress, Steiner construction, planarization) are made
// from reported positions exactly as real nodes would make them.
func (nw *Network) WithPositionNoise(sigma float64, r *rand.Rand) *Network {
	reported := make([]geom.Point, len(nw.nodes))
	for i, n := range nw.nodes {
		reported[i] = geom.Pt(n.Pos.X+r.NormFloat64()*sigma, n.Pos.Y+r.NormFloat64()*sigma)
	}
	clone := *nw
	clone.reported = reported
	return &clone
}

// TruePos returns the node's physical position regardless of any reported-
// position overlay.
func (nw *Network) TruePos(id int) geom.Point { return nw.nodes[id].Pos }

// WithReportedPositions returns a view in which the given nodes report the
// supplied (for example stale) positions instead of their true ones, while
// physics keeps using true positions. Nodes not in overrides report
// truthfully. Used by the location-staleness experiment: a mobile
// destination's advertised coordinates lag behind where it actually is.
func (nw *Network) WithReportedPositions(overrides map[int]geom.Point) *Network {
	reported := make([]geom.Point, len(nw.nodes))
	for i := range reported {
		if p, ok := overrides[i]; ok {
			reported[i] = p
		} else {
			reported[i] = nw.Pos(i) // preserve any existing overlay
		}
	}
	clone := *nw
	clone.reported = reported
	return &clone
}
