package network

import (
	"math/rand"
	"testing"

	"gmp/internal/geom"
)

func TestWithFailuresIsolatesNodes(t *testing.T) {
	nodes := FromPoints([]geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(300, 0),
	})
	nw, err := New(nodes, 400, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	degraded := nw.WithFailures([]int{1})

	if degraded.Alive(1) {
		t.Fatal("node 1 should be down")
	}
	if !degraded.Alive(0) || !degraded.Alive(2) {
		t.Fatal("other nodes should be alive")
	}
	if degraded.Degree(1) != 0 {
		t.Fatalf("dead node degree = %d", degraded.Degree(1))
	}
	for _, n := range degraded.Neighbors(0) {
		if n == 1 {
			t.Fatal("dead node still listed as neighbor")
		}
	}
	if degraded.InRange(0, 1) || degraded.InRange(1, 2) {
		t.Fatal("dead node must not be in range of anyone")
	}
	if !degraded.InRange(2, 3) {
		t.Fatal("live link 2-3 (100 m apart) must survive")
	}
}

func TestWithFailuresOriginalUntouched(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	nw, err := New(DeployUniform(200, 1000, 1000, r), 1000, 1000, 150)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, nw.Len())
	for i := range before {
		before[i] = nw.Degree(i)
	}
	_ = nw.WithFailures([]int{0, 5, 10, 15})
	for i := range before {
		if nw.Degree(i) != before[i] {
			t.Fatalf("original network mutated at node %d", i)
		}
	}
	if !nw.Alive(5) {
		t.Fatal("original must report all nodes alive")
	}
	if len(nw.AliveIDs()) != nw.Len() {
		t.Fatal("original AliveIDs must cover everything")
	}
}

func TestWithFailuresAliveIDs(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	nw, err := New(DeployUniform(50, 500, 500, r), 500, 500, 150)
	if err != nil {
		t.Fatal(err)
	}
	degraded := nw.WithFailures([]int{3, 7, 49})
	alive := degraded.AliveIDs()
	if len(alive) != 47 {
		t.Fatalf("alive = %d", len(alive))
	}
	for _, id := range alive {
		if id == 3 || id == 7 || id == 49 {
			t.Fatalf("dead node %d in AliveIDs", id)
		}
	}
}

func TestWithFailuresOutOfRangeIDsIgnored(t *testing.T) {
	nodes := FromPoints([]geom.Point{geom.Pt(0, 0), geom.Pt(50, 0)})
	nw, err := New(nodes, 100, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	degraded := nw.WithFailures([]int{-1, 99})
	if !degraded.Alive(0) || !degraded.Alive(1) {
		t.Fatal("bogus failure IDs must be ignored")
	}
	if degraded.Degree(0) != 1 {
		t.Fatal("links must survive bogus failure IDs")
	}
}

func TestWithFailuresSymmetry(t *testing.T) {
	// Degraded adjacency must stay symmetric.
	r := rand.New(rand.NewSource(41))
	nw, err := New(DeployUniform(300, 1000, 1000, r), 1000, 1000, 150)
	if err != nil {
		t.Fatal(err)
	}
	failed := r.Perm(300)[:60]
	degraded := nw.WithFailures(failed)
	for u := 0; u < degraded.Len(); u++ {
		for _, v := range degraded.Neighbors(u) {
			found := false
			for _, w := range degraded.Neighbors(v) {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric degraded link (%d,%d)", u, v)
			}
		}
	}
}
