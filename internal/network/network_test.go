package network

import (
	"errors"
	"math/rand"
	"testing"

	"gmp/internal/geom"
)

func mustNetwork(t *testing.T, nodes []Node, w, h, rng float64) *Network {
	t.Helper()
	nw, err := New(nodes, w, h, rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 100, 100, 10); !errors.Is(err, ErrNoNodes) {
		t.Errorf("no nodes: %v", err)
	}
	nodes := FromPoints([]geom.Point{geom.Pt(1, 1)})
	if _, err := New(nodes, 100, 100, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("bad range: %v", err)
	}
	if _, err := New(nodes, 0, 100, 10); !errors.Is(err, ErrBadDimensions) {
		t.Errorf("bad dims: %v", err)
	}
	bad := []Node{{ID: 5, Pos: geom.Pt(1, 1)}}
	if _, err := New(bad, 100, 100, 10); err == nil {
		t.Error("sparse IDs should be rejected")
	}
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	nodes := DeployUniform(300, 1000, 1000, r)
	nw := mustNetwork(t, nodes, 1000, 1000, 150)
	for _, n := range nodes {
		want := map[int]bool{}
		for _, m := range nodes {
			if m.ID != n.ID && n.Pos.Dist(m.Pos) <= 150 {
				want[m.ID] = true
			}
		}
		got := nw.Neighbors(n.ID)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", n.ID, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("node %d: unexpected neighbor %d", n.ID, id)
			}
		}
		// Sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("node %d: neighbors not sorted: %v", n.ID, got)
			}
		}
	}
}

func TestNeighborsEdgeOfRegion(t *testing.T) {
	// Nodes on the region boundary must index into valid grid cells.
	nodes := FromPoints([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1000, 1000), geom.Pt(1000, 0), geom.Pt(0, 1000),
		geom.Pt(999, 999),
	})
	nw := mustNetwork(t, nodes, 1000, 1000, 150)
	if got := nw.Neighbors(1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("corner neighbors = %v", got)
	}
	if nw.Degree(0) != 0 {
		t.Fatalf("origin corner should be isolated, degree %d", nw.Degree(0))
	}
}

func TestInRangeAndDist(t *testing.T) {
	nodes := FromPoints([]geom.Point{geom.Pt(0, 0), geom.Pt(150, 0), geom.Pt(151, 0)})
	nw := mustNetwork(t, nodes, 1000, 1000, 150)
	if !nw.InRange(0, 1) {
		t.Error("boundary distance should be in range")
	}
	if nw.InRange(0, 2) {
		t.Error("just beyond range")
	}
	if d := nw.Dist(0, 2); d != 151 {
		t.Errorf("Dist = %v", d)
	}
}

func TestConnectivityAndReachability(t *testing.T) {
	// Chain topology: 0-1-2 connected, 3 isolated.
	nodes := FromPoints([]geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(700, 700),
	})
	nw := mustNetwork(t, nodes, 1000, 1000, 120)
	if nw.Connected() {
		t.Error("network with isolated node reported connected")
	}
	reach := nw.ReachableFrom(0)
	if len(reach) != 3 || reach[0] != 0 || reach[2] != 2 {
		t.Errorf("ReachableFrom(0) = %v", reach)
	}
	dists := nw.HopDistances(0)
	want := []int{0, 1, 2, -1}
	for i, w := range want {
		if dists[i] != w {
			t.Errorf("HopDistances[%d] = %d, want %d", i, dists[i], w)
		}
	}
}

func TestGridDeployConnected(t *testing.T) {
	nodes := DeployGrid(10, 10, 100)
	nw := mustNetwork(t, nodes, 1000, 1000, 150)
	if !nw.Connected() {
		t.Fatal("grid with spacing < range must be connected")
	}
	// Interior node at (450+?,...): grid spacing 100, range 150 covers the 4
	// orthogonal and 4 diagonal neighbors (diag = 141.4 < 150).
	center := nw.ClosestNode(geom.Pt(450, 450))
	if got := nw.Degree(center); got != 8 {
		t.Fatalf("interior grid degree = %d, want 8", got)
	}
}

func TestClosestNodeAndDisk(t *testing.T) {
	nodes := DeployGrid(5, 5, 100)
	nw := mustNetwork(t, nodes, 500, 500, 150)
	id := nw.ClosestNode(geom.Pt(51, 52))
	if !nw.Pos(id).Eq(geom.Pt(50, 50)) {
		t.Fatalf("ClosestNode = %d at %v", id, nw.Pos(id))
	}
	disk := nw.NodesInDisk(geom.Pt(50, 50), 101)
	if len(disk) != 3 {
		t.Fatalf("NodesInDisk = %v", disk)
	}
}

func TestAvgDegreeMatchesTheory(t *testing.T) {
	// For uniform density d nodes/m² and range r, expected degree ≈ dπr²
	// away from borders. With 1000 nodes in 1000x1000 at r=150 that is
	// ≈ 70.7; border effects pull the mean down ~10-20%.
	r := rand.New(rand.NewSource(67))
	nodes := DeployUniform(1000, 1000, 1000, r)
	nw := mustNetwork(t, nodes, 1000, 1000, 150)
	got := nw.AvgDegree()
	if got < 50 || got > 72 {
		t.Fatalf("AvgDegree = %v, outside plausible band [50, 72]", got)
	}
}

func TestDeployUniformWithVoid(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	center := geom.Pt(500, 500)
	nodes := DeployUniformWithVoid(500, 1000, 1000, center, 200, r)
	if len(nodes) != 500 {
		t.Fatalf("deployed %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.Pos.Dist(center) < 200 {
			t.Fatalf("node %d inside the void at %v", n.ID, n.Pos)
		}
	}
}

func TestDeployUniformExcludeAndCShape(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	center := geom.Pt(500, 500)
	trap := CShapedObstacle(center, 180, 360)
	nodes := DeployUniformExclude(400, 1000, 1000, trap, r)
	if len(nodes) != 400 {
		t.Fatalf("deployed %d", len(nodes))
	}
	for _, n := range nodes {
		if trap(n.Pos) {
			t.Fatalf("node %d inside the obstacle at %v", n.ID, n.Pos)
		}
	}
	// The predicate itself: wall east, opening west, clear center/outside.
	if !trap(geom.Pt(500+250, 500)) {
		t.Error("east wall should be excluded")
	}
	if trap(geom.Pt(500-250, 500)) {
		t.Error("western opening should be allowed")
	}
	if trap(center) || trap(geom.Pt(500, 500+170)) {
		t.Error("pocket interior should be allowed")
	}
	if trap(geom.Pt(500, 500+400)) {
		t.Error("outside the outer radius should be allowed")
	}
	if !trap(geom.Pt(500, 500+250)) {
		t.Error("north wall should be excluded")
	}
}

func TestDeployDeterminism(t *testing.T) {
	a := DeployUniform(50, 1000, 1000, rand.New(rand.NewSource(99)))
	b := DeployUniform(50, 1000, 1000, rand.New(rand.NewSource(99)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical deployment")
		}
	}
}

func TestGraphExport(t *testing.T) {
	nodes := FromPoints([]geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0)})
	nw := mustNetwork(t, nodes, 1000, 1000, 120)
	g := nw.Graph()
	if g.N != 3 {
		t.Fatalf("Graph.N = %d", g.N)
	}
	if len(g.Adj[1]) != 2 {
		t.Fatalf("middle node adjacency = %v", g.Adj[1])
	}
}
