package network

import (
	"math/rand"
	"reflect"
	"testing"

	"gmp/internal/geom"
)

// TestTilePartition verifies the tile layer is a partition: every node lives
// in exactly one tile, Tile(id) agrees with the per-tile node lists, lists
// are ascending, and the tile index is consistent with the node's grid cell
// (a tile is a TileSpan×TileSpan block of cells).
func TestTilePartition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 7, 120, 900} {
		nw := randomTestNet(t, r, n, 1100, 700, 130)
		seen := make(map[int]int)
		total := 0
		for ti := 0; ti < nw.Tiles(); ti++ {
			ids := nw.TileNodes(ti)
			for i, id := range ids {
				if i > 0 && ids[i-1] >= id {
					t.Fatalf("tile %d nodes not ascending: %v", ti, ids)
				}
				if prev, dup := seen[id]; dup {
					t.Fatalf("node %d in tiles %d and %d", id, prev, ti)
				}
				seen[id] = ti
				if nw.Tile(id) != ti {
					t.Fatalf("Tile(%d) = %d, but node listed in tile %d", id, nw.Tile(id), ti)
				}
			}
			total += len(ids)
		}
		if total != nw.Len() {
			t.Fatalf("tiles cover %d of %d nodes", total, nw.Len())
		}
		for id := 0; id < nw.Len(); id++ {
			c := nw.cellOf(nw.nodes[id].Pos)
			cx, cy := c%nw.cols, c/nw.cols
			want := (cy/TileSpan)*nw.tileCols + cx/TileSpan
			if nw.Tile(id) != want {
				t.Fatalf("node %d: Tile = %d, cell (%d,%d) implies %d", id, nw.Tile(id), cx, cy, want)
			}
		}
	}
}

// TestTileBorderExactness pins the convention for nodes exactly on a tile
// border: the assignment follows the cell grid (a coordinate exactly on a
// cell edge belongs to the higher cell), so a border node is in exactly one
// tile and neighbors straddling the border still see each other through the
// ordinary adjacency.
func TestTileBorderExactness(t *testing.T) {
	const rng = 100.0
	// Cell size = rng; tile side = TileSpan*rng = 400. Place one node just
	// inside tile (0,0), one exactly on the x=400 border, one just beyond.
	nodes := []Node{
		{ID: 0, Pos: geom.Pt(399.0, 50)},
		{ID: 1, Pos: geom.Pt(400.0, 50)}, // exactly on the tile border
		{ID: 2, Pos: geom.Pt(401.0, 50)},
	}
	nw, err := New(nodes, 900, 900, rng)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Tiles() < 2 {
		t.Fatalf("want ≥ 2 tiles, got %d", nw.Tiles())
	}
	if got, want := nw.Tile(0), 0; got != want {
		t.Fatalf("Tile(0) = %d, want %d", got, want)
	}
	if nw.Tile(1) != nw.Tile(2) {
		t.Fatalf("border node in tile %d, interior-right node in tile %d; exact border must round up",
			nw.Tile(1), nw.Tile(2))
	}
	if nw.Tile(1) == nw.Tile(0) {
		t.Fatal("border node landed in the left tile; must belong to the higher tile")
	}
	// The border must not affect radio adjacency: 0↔1 are 1 m apart.
	if got := nw.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v, want [1 2]", got)
	}
}

// TestTilingIndependentOfNodes verifies the tile decomposition is a pure
// function of region geometry and radio range — two deployments over the same
// region must agree on tile count and on every position→tile assignment. The
// sharded kernel's determinism argument rests on this.
func TestTilingIndependentOfNodes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomTestNet(t, r, 50, 1000, 1000, 150)
	b := randomTestNet(t, r, 800, 1000, 1000, 150)
	if a.Tiles() != b.Tiles() {
		t.Fatalf("tile counts differ: %d vs %d", a.Tiles(), b.Tiles())
	}
	for q := 0; q < 200; q++ {
		p := queryPoint(r, 1000, 1000)
		ca, cb := a.cellOf(p), b.cellOf(p)
		ta := (ca / a.cols / TileSpan) * a.tileCols
		tb := (cb / b.cols / TileSpan) * b.tileCols
		ta += ca % a.cols / TileSpan
		tb += cb % b.cols / TileSpan
		if ta != tb {
			t.Fatalf("point %v maps to tile %d in one deployment, %d in the other", p, ta, tb)
		}
	}
}

// TestParallelAdjacencyMatchesSerial is the satellite equivalence test:
// the chunked parallel adjacency build must produce exactly the rows of the
// serial build, on networks both below and above the parallel threshold.
func TestParallelAdjacencyMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for _, n := range []int{300, adjParallelThreshold + 500} {
		nw := randomTestNet(t, r, n, 2000, 1500, 80)
		serial := make([][]int, nw.Len())
		ref := &Network{
			nodes: nw.nodes, rng: nw.rng, width: nw.width, height: nw.height,
			cellSize: nw.cellSize, cols: nw.cols, rows: nw.rows, cells: nw.cells,
			adj: serial,
		}
		ref.buildAdjacencyRange(0, nw.Len())
		if !reflect.DeepEqual(nw.adj, serial) {
			for i := range serial {
				if !reflect.DeepEqual(nw.adj[i], serial[i]) {
					t.Fatalf("n=%d: adjacency row %d differs: parallel %v, serial %v",
						n, i, nw.adj[i], serial[i])
				}
			}
		}
	}
}
