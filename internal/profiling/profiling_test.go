package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesArtifacts switches everything file-backed on, does a bit
// of work, stops, and checks both artifacts exist and are non-empty.
func TestStartWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(Config{CPUProfile: cpu, MemProfile: mem, Name: "test"})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	sink := 0
	for i := 0; i < 1000; i++ {
		sink += i * i
	}
	_ = sink
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

// TestStartUnwindsOnError points the trace at an unwritable path; Start
// must fail but still return a usable stop that unwinds the CPU profile it
// had already begun.
func TestStartUnwindsOnError(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(Config{
		CPUProfile: filepath.Join(dir, "cpu.prof"),
		Trace:      filepath.Join(dir, "missing", "trace.out"),
	})
	if err == nil {
		t.Fatal("want error for unwritable trace path")
	}
	stop() // must not panic, and must stop the started CPU profile

	// A second Start must succeed: the failed one cannot leave the
	// process-global CPU profiler running.
	stop2, err := Start(Config{CPUProfile: filepath.Join(dir, "cpu2.prof")})
	if err != nil {
		t.Fatalf("second Start after unwind: %v", err)
	}
	stop2()
}
