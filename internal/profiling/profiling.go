// Package profiling is the one profiling bootstrap shared by the repo's
// long-running commands (gmpsim campaigns, the gmpd daemon): CPU profile,
// exit-time heap profile, runtime execution trace, and a live
// net/http/pprof endpoint, all switched on by the same flag spellings.
//
// Usage:
//
//	stop, err := profiling.Start(profiling.Config{CPUProfile: *cpuProf, ...})
//	if err != nil { return err }
//	defer stop()
//
// Start returns a stop function in every case (possibly a no-op), so the
// caller can defer it unconditionally; on error the partial setup has
// already been unwound.
package profiling

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	// Registers the /debug/pprof handlers on the default mux the PprofAddr
	// server uses.
	_ "net/http/pprof"
)

// Config selects which profiling artifacts to produce. Zero values disable
// each one.
type Config struct {
	// CPUProfile is a file path for a whole-run CPU profile.
	CPUProfile string
	// MemProfile is a file path for a heap profile written at stop time
	// (after a forced GC, so it shows live objects, not garbage).
	MemProfile string
	// Trace is a file path for a runtime execution trace.
	Trace string
	// PprofAddr, when non-empty, serves net/http/pprof on this address
	// (e.g. "localhost:6060") for live inspection. The server runs until
	// process exit; a bind failure is reported on stderr, not fatal — a
	// busy port should not kill a campaign or daemon.
	PprofAddr string
	// Name prefixes stderr diagnostics (defaults to "profiling").
	Name string
}

// Start switches on the configured profiling. The returned stop function
// flushes and closes everything in reverse order; it is never nil.
func Start(cfg Config) (stop func(), err error) {
	if cfg.Name == "" {
		cfg.Name = "profiling"
	}
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cfg.PprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(cfg.PprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -pprof: %v\n", cfg.Name, err)
			}
		}()
	}
	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return stop, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("-cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return stop, fmt.Errorf("-trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("-trace: %w", err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if cfg.MemProfile != "" {
		stops = append(stops, func() {
			f, err := os.Create(cfg.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", cfg.Name, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", cfg.Name, err)
			}
		})
	}
	return stop, nil
}
