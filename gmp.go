package gmp

import (
	"fmt"
	"math/rand"

	"gmp/internal/geom"
	"gmp/internal/groups"
	"gmp/internal/network"
	"gmp/internal/planar"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/steiner"
	"gmp/internal/trace"
	"gmp/internal/view"
	"gmp/internal/viz"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Point is a location in the Euclidean plane (meters).
	Point = geom.Point
	// Node is a deployed sensor node.
	Node = network.Node
	// Network is an immutable deployed sensor field.
	Network = network.Network
	// SteinerTree is a multicast tree produced by rrSTR or the MST builder.
	SteinerTree = steiner.Tree
	// SteinerOptions configures rrSTR (radio-range awareness et al.).
	SteinerOptions = steiner.Options
	// SteinerBuilder is a reusable tree-construction arena: repeated builds
	// on one builder are allocation-free in steady state. Not safe for
	// concurrent use; the returned tree is valid until the next build.
	SteinerBuilder = steiner.Builder
	// SteinerDest is one destination record (position plus caller label)
	// handed to a SteinerBuilder.
	SteinerDest = steiner.Dest
	// Protocol is a runnable multicast routing protocol.
	Protocol = routing.Protocol
	// Result carries one task's measured metrics.
	Result = sim.TaskMetrics
	// RadioParams is the physical-layer model (Table 1 defaults).
	RadioParams = sim.RadioParams
	// TraceEvent describes one observed transmission.
	TraceEvent = sim.TraceEvent
	// FaultPlan describes injected link loss and node crashes (see
	// WithFaults). The zero plan is the ideal collision-free MAC.
	FaultPlan = sim.FaultPlan
	// NodeCrash schedules one node's radio failure inside a FaultPlan.
	NodeCrash = sim.Crash
	// ARQConfig configures hop-by-hop acknowledged delivery (see WithARQ).
	ARQConfig = sim.ARQConfig
	// DropReason classifies why a packet copy was terminated; it indexes
	// Result's DropsByReason and DestDropsByReason ledgers.
	DropReason = sim.DropReason
	// PlanarKind selects the perimeter-mode planarization rule.
	PlanarKind = planar.Kind
	// Region is a geocast target area (Disk, Rect, Polygon).
	Region = geom.Region
	// Disk is a circular geocast region.
	Disk = geom.Disk
	// Rect is an axis-aligned rectangular geocast region.
	Rect = geom.Rect
	// Polygon is a simple-polygon geocast region.
	Polygon = geom.Polygon
)

// Drop reasons, re-exported so callers can index Result's per-reason ledgers
// (DropsByReason, DestDropsByReason). See the sim package for the exact
// billing rules behind each reason.
const (
	ReasonHopBudget       = sim.ReasonHopBudget
	ReasonProtocol        = sim.ReasonProtocol
	ReasonStranded        = sim.ReasonStranded
	ReasonWatchdog        = sim.ReasonWatchdog
	ReasonLinkLoss        = sim.ReasonLinkLoss
	ReasonCrashedReceiver = sim.ReasonCrashedReceiver
	ReasonSenderCrashed   = sim.ReasonSenderCrashed
	ReasonARQExhausted    = sim.ReasonARQExhausted
	ReasonInvalidSend     = sim.ReasonInvalidSend
	NumDropReasons        = sim.NumDropReasons
)

// NewRect normalizes two arbitrary corners into a Rect region.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// ConvexHull returns the convex hull of pts in counter-clockwise order.
func ConvexHull(pts []Point) []Point { return geom.ConvexHull(pts) }

// HullRegion returns a polygon region covering the convex hull of pts grown
// outward by margin meters — "the area these nodes occupy", for geocasting.
func HullRegion(pts []Point, margin float64) Polygon { return geom.HullRegion(pts, margin) }

// Planarization rules.
const (
	// Gabriel is the Gabriel-graph rule (GPSR default).
	Gabriel = planar.Gabriel
	// RelativeNeighborhood is the sparser RNG rule.
	RelativeNeighborhood = planar.RelativeNeighborhood
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewNetwork builds a sensor network over nodes in a width×height region
// with the given radio range.
func NewNetwork(nodes []Node, width, height, radioRange float64) (*Network, error) {
	return network.New(nodes, width, height, radioRange)
}

// DeployUniform places n nodes uniformly at random (the paper's deployment).
func DeployUniform(n int, width, height float64, r *rand.Rand) []Node {
	return network.DeployUniform(n, width, height, r)
}

// NodesFromPoints wraps explicit coordinates as nodes with dense IDs.
func NodesFromPoints(pts []Point) []Node { return network.FromPoints(pts) }

// BuildSteinerTree runs rrSTR from source over dests; dest labels are their
// indices in the slice. Zero opts give the basic (GMPnr) variant; set
// RadioAware and RadioRange for the full §3.3 heuristic.
func BuildSteinerTree(source Point, dests []Point, opts SteinerOptions) *SteinerTree {
	ds := make([]steiner.Dest, len(dests))
	for i, p := range dests {
		ds[i] = steiner.Dest{Pos: p, Label: i}
	}
	return steiner.Build(source, ds, opts)
}

// ReductionRatio computes the paper's §3.1 pair-selection measure.
func ReductionRatio(source, u, v Point) float64 { return steiner.ReductionRatio(source, u, v) }

// SteinerPoint returns the exact Euclidean Steiner (Fermat) point of three
// points.
func SteinerPoint(a, b, c Point) Point { return geom.SteinerPoint(a, b, c) }

// DefaultRadioParams returns the paper's Table 1 physical-layer model.
func DefaultRadioParams() RadioParams { return sim.DefaultRadioParams() }

// System bundles a network with its planarized graph and a simulation
// engine, and constructs protocols over them. Create one per network with
// NewSystem; run tasks sequentially on it (clone for concurrent use).
type System struct {
	nw      *network.Network
	pg      *planar.Graph
	en      *sim.Engine
	maxHops int
}

// SystemOption customizes NewSystem.
type SystemOption func(*systemConfig)

type systemConfig struct {
	radio   RadioParams
	maxHops int
	kind    planar.Kind
	faults  FaultPlan
	arq     ARQConfig
}

// WithRadio overrides the radio/energy parameters.
func WithRadio(p RadioParams) SystemOption {
	return func(c *systemConfig) { c.radio = p }
}

// WithMaxHops sets the per-packet hop budget (0 = unlimited; the paper's
// evaluation uses 100). Leaving the budget unlimited lets perimeter-mode
// packets circulate indefinitely on unreachable targets, so keep a budget
// for untrusted workloads. Negative budgets are a programming error and
// panic rather than silently meaning "unlimited".
func WithMaxHops(n int) SystemOption {
	if n < 0 {
		panic(fmt.Sprintf("gmp: WithMaxHops(%d): negative hop budget (use 0 for unlimited)", n))
	}
	return func(c *systemConfig) { c.maxHops = n }
}

// WithFaults injects a fault plan — per-link packet loss (uniform and/or
// distance-dependent) and scheduled node crashes — into the system's
// simulation engine. The plan's RNG is seeded deterministically, so runs
// stay reproducible. The zero plan is a strict no-op (the ideal MAC).
// Invalid plans (loss probabilities outside [0,1], crashes of unknown
// nodes) panic at NewSystem.
func WithFaults(p FaultPlan) SystemOption {
	return func(c *systemConfig) { c.faults = p }
}

// WithARQ enables hop-by-hop acknowledged delivery: receivers ACK every
// data frame (costing airtime and energy) and senders retransmit lost
// frames with exponential backoff up to cfg.MaxRetries before giving up.
// Use DefaultARQ() for the standard configuration. Invalid configurations
// panic at NewSystem.
func WithARQ(cfg ARQConfig) SystemOption {
	return func(c *systemConfig) { c.arq = cfg }
}

// DefaultARQ returns the standard ARQ configuration (3 retries, 16-byte
// ACKs, auto timeout, exponential backoff ×2).
func DefaultARQ() ARQConfig { return sim.DefaultARQ() }

// WithPlanarizer selects Gabriel (default) or RelativeNeighborhood for
// perimeter routing.
func WithPlanarizer(k PlanarKind) SystemOption {
	return func(c *systemConfig) { c.kind = k }
}

// NewSystem prepares a simulation system over nw.
func NewSystem(nw *Network, opts ...SystemOption) *System {
	cfg := systemConfig{
		radio:   sim.DefaultRadioParams(),
		maxHops: 100,
		kind:    planar.Gabriel,
	}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.radio.RangeM = nw.Range()
	en := sim.NewEngine(nw, cfg.radio, cfg.maxHops)
	if err := en.SetFaults(cfg.faults); err != nil {
		panic("gmp: WithFaults: " + err.Error())
	}
	if err := en.SetARQ(cfg.arq); err != nil {
		panic("gmp: WithARQ: " + err.Error())
	}
	pg := planar.Planarize(nw, cfg.kind)
	en.SetViews(view.NewOracle(nw, pg))
	return &System{
		nw:      nw,
		pg:      pg,
		en:      en,
		maxHops: cfg.maxHops,
	}
}

// Network returns the system's network.
func (s *System) Network() *Network { return s.nw }

// GMP returns the paper's protocol (radio-range aware).
func (s *System) GMP() Protocol { return routing.NewGMP() }

// GMPnr returns GMP without radio-range awareness (ablation).
func (s *System) GMPnr() Protocol { return routing.NewGMPnr() }

// LGS returns the location-guided Steiner (MST) baseline.
func (s *System) LGS() Protocol { return routing.NewLGS() }

// LGK returns the location-guided k-ary tree baseline.
func (s *System) LGK(k int) Protocol { return routing.NewLGK(k) }

// PBM returns the position-based multicast baseline with trade-off λ.
func (s *System) PBM(lambda float64) Protocol { return routing.NewPBM(lambda) }

// GRD returns the per-destination greedy unicast baseline.
func (s *System) GRD() Protocol { return routing.NewGRD() }

// SMT returns the centralized KMB source-routing baseline.
func (s *System) SMT() Protocol { return routing.NewSMT(s.nw) }

// Multicast routes one message from src to dests under p and returns the
// task's metrics.
func (s *System) Multicast(p Protocol, src int, dests []int) Result {
	return s.en.RunTask(p, src, dests)
}

// ScriptSession describes one session of a concurrent multicast script.
type ScriptSession = sim.Session

// ScriptResult carries a session's metrics including delivery latencies.
type ScriptResult = sim.SessionMetrics

// RunScript simulates overlapping multicast sessions on the shared medium;
// half-duplex senders serialize their frames, so latency reflects load.
// Construct a fresh protocol per session — sessions must not share stateful
// handlers.
func (s *System) RunScript(sessions []ScriptSession) []ScriptResult {
	return s.en.RunScript(sessions)
}

// SetDynamicFrames switches airtime and energy accounting from the fixed
// Table 1 message size to each packet's actual wire-format size (payload +
// header). See the A-5 ablation in DESIGN.md.
func (s *System) SetDynamicFrames(on bool) { s.en.SetDynamicFrames(on) }

// Trace is Multicast plus a transcript of every transmission, for
// debugging and the gmptrace CLI.
func (s *System) Trace(p Protocol, src int, dests []int) (Result, []TraceEvent) {
	var events []TraceEvent
	s.en.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	defer s.en.SetTracer(nil)
	res := s.en.RunTask(p, src, dests)
	return res, events
}

// RouteAnalysis is the reconstructed digest of one traced task (paths,
// stretch factors, branch points, perimeter usage).
type RouteAnalysis = trace.Analysis

// Analyze runs a traced multicast and digests its forwarding behavior.
func (s *System) Analyze(p Protocol, src int, dests []int) (*RouteAnalysis, Result, error) {
	res, events := s.Trace(p, src, dests)
	a, err := trace.Analyze(s.nw, src, events, res.Delivered)
	if err != nil {
		return nil, res, err
	}
	return a, res, nil
}

// RenderSVG draws a traced task over the network and its planarized graph.
func (s *System) RenderSVG(events []TraceEvent, src int, dests []int) string {
	return viz.RenderTask(s.nw, s.pg, events, src, dests)
}

// Geocast returns a protocol delivering to every node within radius of
// center; pair it with GeocastDests for delivery accounting.
func (s *System) Geocast(center Point, radius float64) Protocol {
	return routing.NewGeocast(center, radius)
}

// GeocastDests returns the IDs of the nodes inside the given disk — the
// destination set to pass to Multicast alongside the Geocast protocol.
func (s *System) GeocastDests(center Point, radius float64) []int {
	return network.NodesInDisk(s.nw, center, radius)
}

// GeocastRegion returns a protocol delivering to every node inside an
// arbitrary region.
func (s *System) GeocastRegion(region Region) Protocol {
	return routing.NewGeocastRegion(region)
}

// GeocastRegionDests returns the IDs of the nodes inside region.
func (s *System) GeocastRegionDests(region Region) []int {
	return network.NodesInRegion(s.nw, region)
}

// GroupService is the GHT-style distributed group-membership service.
type GroupService = groups.Service

// Groups creates a membership service bound to this system's network, with
// the system's hop budget for control messages. A system with an unlimited
// data-plane budget (WithMaxHops(0)) keeps the service's default control
// budget, which must stay finite.
func (s *System) Groups() *GroupService {
	if s.maxHops <= 0 {
		return groups.New(s.nw, s.pg)
	}
	return groups.New(s.nw, s.pg, groups.WithMaxHops(s.maxHops))
}

// MulticastGroup resolves a group's members on behalf of src (costing
// control messages on svc) and multicasts to them with p.
func (s *System) MulticastGroup(svc *GroupService, p Protocol, src int, group string) (Result, error) {
	members, err := svc.Members(src, group)
	if err != nil {
		return Result{}, err
	}
	return s.Multicast(p, src, members), nil
}
