package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "description": "test baseline",
  "microbenchmarks": {
    "BenchmarkSingleGMPDecision": { "ns_per_op": 50000, "bytes_per_op": 1000, "allocs_per_op": 10 },
    "BenchmarkSingleRRSTRBuild":  { "ns_per_op": 30000, "bytes_per_op": 80,   "allocs_per_op": 0 }
  }
}`

// -count=3 output with a GOMAXPROCS suffix and an unrelated PASS footer.
const sampleOutput = `goos: linux
BenchmarkSingleGMPDecision-8   	     200	     48000 ns/op	     900 B/op	       9 allocs/op
BenchmarkSingleGMPDecision-8   	     200	     52000 ns/op	     950 B/op	      10 allocs/op
BenchmarkSingleGMPDecision-8   	     200	     49000 ns/op	     920 B/op	       9 allocs/op
BenchmarkSingleRRSTRBuild-8    	     200	     29000 ns/op	      80 B/op	       0 allocs/op
PASS
`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinSlack(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatalf("gate failed on in-budget medians: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkSingleGMPDecision") {
		t.Fatalf("report missing benchmark:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	regressed := strings.ReplaceAll(sampleOutput, "9 allocs/op", "40 allocs/op")
	var out strings.Builder
	err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(regressed), &out)
	if err == nil {
		t.Fatalf("gate passed a 4x allocs/op regression:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSingleGMPDecision") {
		t.Fatalf("failure does not name the regressed benchmark: %v", err)
	}
}

// Zero-baseline benchmarks rely on the absolute headroom: +2 allocs passes,
// +3 fails.
func TestGateZeroBaselineAbsoluteSlack(t *testing.T) {
	for _, tc := range []struct {
		allocs string
		wantOK bool
	}{{"2", true}, {"3", false}} {
		in := strings.ReplaceAll(sampleOutput, "0 allocs/op", tc.allocs+" allocs/op")
		var out strings.Builder
		err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(in), &out)
		if ok := err == nil; ok != tc.wantOK {
			t.Errorf("allocs=%s: gate ok=%v, want %v (err=%v)", tc.allocs, ok, tc.wantOK, err)
		}
	}
}

func TestGateRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("gate passed with no benchmark lines")
	}
}

// A benchmark missing from the baseline is reported as new, never gated.
func TestGateIgnoresUnknownBenchmarks(t *testing.T) {
	in := sampleOutput + "BenchmarkSomethingNew-8   	 100	 1000 ns/op	 5000 B/op	 999 allocs/op\n"
	var out strings.Builder
	if err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(in), &out); err != nil {
		t.Fatalf("unknown benchmark failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("unknown benchmark not reported:\n%s", out.String())
	}
}

const speedupBaseline = `{
  "description": "speedup baseline",
  "speedups": [
    { "fast": "BenchmarkScaleShards4", "slow": "BenchmarkScaleShards1", "min_ratio": 2.0 }
  ]
}`

func writeSpeedupBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "speedup.json")
	if err := os.WriteFile(path, []byte(speedupBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func speedupOutput(cpuSuffix string, slow, fast int) string {
	return "goos: linux\n" +
		"BenchmarkScaleShards1" + cpuSuffix + " \t       1\t 400000000 ns/op\t     " + itoa(slow) + " hops/s\n" +
		"BenchmarkScaleShards4" + cpuSuffix + " \t       1\t 100000000 ns/op\t     " + itoa(fast) + " hops/s\n" +
		"PASS\n"
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestSpeedupGatePasses(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-baseline", writeSpeedupBaseline(t)},
		strings.NewReader(speedupOutput("-4", 25000, 60000)), &out)
	if err != nil {
		t.Fatalf("2.4x speedup failed a 2.0x gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2.40x") {
		t.Fatalf("report missing ratio:\n%s", out.String())
	}
}

func TestSpeedupGateFailsBelowRatio(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-baseline", writeSpeedupBaseline(t)},
		strings.NewReader(speedupOutput("-4", 40000, 60000)), &out)
	if err == nil {
		t.Fatalf("1.5x speedup passed a 2.0x gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("failure does not mention the speedup gate: %v", err)
	}
}

// A single-CPU run (no GOMAXPROCS suffix) cannot exhibit parallel speedup:
// the ratio gate must skip, not fail, so local 1-core runs stay green while
// multi-CPU CI enforces the ratio.
func TestSpeedupGateSkipsSingleCPU(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-baseline", writeSpeedupBaseline(t)},
		strings.NewReader(speedupOutput("", 60000, 60000)), &out)
	if err != nil {
		t.Fatalf("single-CPU run failed the ratio gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skipped (single-CPU") {
		t.Fatalf("no skip notice:\n%s", out.String())
	}
}

// decisions/s (the serve daemon's throughput metric) feeds the same ratio
// gate as hops/s.
func TestSpeedupGateParsesDecisionsPerSec(t *testing.T) {
	in := "goos: linux\n" +
		"BenchmarkScaleShards1-4 \t       1\t 400000000 ns/op\t     25000 decisions/s\n" +
		"BenchmarkScaleShards4-4 \t       1\t 100000000 ns/op\t     60000 decisions/s\n" +
		"PASS\n"
	var out strings.Builder
	err := run([]string{"-baseline", writeSpeedupBaseline(t)}, strings.NewReader(in), &out)
	if err != nil {
		t.Fatalf("decisions/s ratio failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2.40x") {
		t.Fatalf("report missing ratio:\n%s", out.String())
	}
}

// The alloc-only CI invocation never runs the scale benchmarks; a baseline
// with speedup gates must skip them when the benchmarks are absent.
func TestSpeedupGateSkipsMissingBenchmarks(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-baseline", writeSpeedupBaseline(t)},
		strings.NewReader("BenchmarkSomethingElse-4 \t 100\t 1000 ns/op\n"), &out)
	if err != nil {
		t.Fatalf("missing benchmarks failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "not in input") {
		t.Fatalf("no skip notice:\n%s", out.String())
	}
}
