// Command benchgate is the performance-regression gate. It parses `go test
// -bench` output (stdin or a file argument), takes the median of each metric
// across -count repeats, and compares against the baselines recorded in a
// BENCH_*.json file. Two kinds of gates:
//
//   - Allocation gates: any benchmark whose measured allocs/op exceeds its
//     microbenchmark baseline beyond the configured slack fails. Benchmarks
//     absent from the baseline are reported but never fail. Wall-clock
//     (ns/op) is printed for context and never gated — CI time noise would
//     make it flaky.
//   - Speedup gates (the baseline's "speedups" list): the ratio of two
//     benchmarks' custom throughput metrics (hops/s from the sim kernel,
//     decisions/s and routes/s from the serve daemon — all land in the
//     same hops_per_sec baseline slot) must reach min_ratio. A throughput
//     *ratio* measured in one process is robust to machine speed, so it can
//     be gated where absolute ns/op cannot. The gate arms only when the
//     benchmarks ran on more than one CPU (a GOMAXPROCS suffix ≥ 2, e.g.
//     from -cpu 4) — a single CPU cannot exhibit parallel speedup — and
//     skips benchmarks absent from the input, so alloc-only invocations
//     are unaffected.
//
// Usage:
//
//	go test -run '^$' -bench 'Single' -benchtime=200x -count=3 ./... | benchgate -baseline BENCH_PR5.json
//	go test -run '^$' -bench 'ScaleShards' -benchtime=1x -count=3 -cpu 4 ./internal/experiment/ | benchgate -baseline BENCH_PR7.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the schema of the repo's BENCH_*.json records; only
// the microbenchmark metrics matter to the gate.
type baselineFile struct {
	Description     string               `json:"description"`
	Microbenchmarks map[string]benchLine `json:"microbenchmarks"`
	Speedups        []speedupGate        `json:"speedups"`
}

type benchLine struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HopsPerSec  float64 `json:"hops_per_sec,omitempty"`
	cpus        int
}

// speedupGate requires benchmark Fast's median hops/s to be at least
// MinRatio times benchmark Slow's. Skipped unless both ran on ≥ 2 CPUs.
type speedupGate struct {
	Fast     string  `json:"fast"`
	Slow     string  `json:"slow"`
	MinRatio float64 `json:"min_ratio"`
}

// benchRe matches a `go test -bench` result line with -benchmem metrics, e.g.
//
//	BenchmarkSingleGMPDecision        200    4822 ns/op    512 B/op    4 allocs/op
//
// The -cpu/GOMAXPROCS suffix (-8) is stripped so names match baseline keys;
// its value is kept as the run's CPU count (no suffix = GOMAXPROCS 1).
var benchRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([\d.]+) ns/op(.*)$`)

var metricRe = regexp.MustCompile(`(\S+) (B/op|allocs/op|hops/s|decisions/s|routes/s)`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		basePath = fs.String("baseline", "", "baseline BENCH_*.json file (required)")
		slack    = fs.Float64("slack", 0.10, "fractional headroom over baseline allocs/op before failing")
		absSlack = fs.Float64("abs", 2, "absolute allocs/op headroom, for near-zero baselines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" {
		return fmt.Errorf("-baseline is required")
	}
	data, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", *basePath, err)
	}
	if len(base.Microbenchmarks) == 0 && len(base.Speedups) == 0 {
		return fmt.Errorf("%s: no microbenchmarks or speedup gates", *basePath)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "%-34s %14s %14s %9s\n", "benchmark (median allocs/op)", "baseline", "measured", "delta")
	for _, name := range names {
		cur := median(got[name])
		want, ok := base.Microbenchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-34s %14s %14.0f %9s\n", name, "-", cur.AllocsPerOp, "new")
			continue
		}
		limit := want.AllocsPerOp*(1+*slack) + *absSlack
		status := "ok"
		if cur.AllocsPerOp > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f allocs/op exceeds baseline %.0f (limit %.1f)",
				name, cur.AllocsPerOp, want.AllocsPerOp, limit))
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+8.1f%% %s\n",
			name, want.AllocsPerOp, cur.AllocsPerOp, delta(want.AllocsPerOp, cur.AllocsPerOp), status)
		fmt.Fprintf(w, "%-34s %12.0f B %12.0f B   (ns/op %.0f → %.0f, not gated)\n",
			"", want.BytesPerOp, cur.BytesPerOp, want.NsPerOp, cur.NsPerOp)
	}
	for _, g := range base.Speedups {
		fastRuns, okF := got[g.Fast]
		slowRuns, okS := got[g.Slow]
		if !okF || !okS {
			fmt.Fprintf(w, "speedup %s / %s: skipped (benchmarks not in input)\n", g.Fast, g.Slow)
			continue
		}
		fast, slow := median(fastRuns), median(slowRuns)
		if fast.cpus < 2 {
			fmt.Fprintf(w, "speedup %s / %s: skipped (single-CPU run cannot show parallel speedup)\n",
				g.Fast, g.Slow)
			continue
		}
		if slow.HopsPerSec <= 0 {
			failures = append(failures, fmt.Sprintf(
				"%s reported no hops/s to ratio against", g.Slow))
			continue
		}
		ratio := fast.HopsPerSec / slow.HopsPerSec
		status := "ok"
		if ratio < g.MinRatio {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s/%s speedup %.2fx below required %.2fx (%.0f vs %.0f hops/s)",
				g.Fast, g.Slow, ratio, g.MinRatio, fast.HopsPerSec, slow.HopsPerSec))
		}
		fmt.Fprintf(w, "speedup %s / %s: %.2fx (need %.2fx, %.0f vs %.0f hops/s) %s\n",
			g.Fast, g.Slow, ratio, g.MinRatio, fast.HopsPerSec, slow.HopsPerSec, status)
	}
	w.Flush()
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// parseBench collects every -benchmem result line by benchmark name; repeated
// -count runs accumulate so the caller can take medians.
func parseBench(r io.Reader) (map[string][]benchLine, error) {
	out := make(map[string][]benchLine)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		line := benchLine{NsPerOp: ns, cpus: 1}
		if m[2] != "" {
			if c, err := strconv.Atoi(m[2]); err == nil {
				line.cpus = c
			}
		}
		for _, mm := range metricRe.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			switch mm[2] {
			case "B/op":
				line.BytesPerOp = v
			case "allocs/op":
				line.AllocsPerOp = v
			case "hops/s", "decisions/s", "routes/s":
				// All are "useful work per second" metrics; they share the
				// baseline's hops_per_sec slot (no benchmark reports two).
				line.HopsPerSec = v
			}
		}
		out[m[1]] = append(out[m[1]], line)
	}
	return out, sc.Err()
}

// median reduces repeated runs of one benchmark to per-metric medians, so a
// single noisy -count repeat cannot fail (or sneak past) the gate.
func median(runs []benchLine) benchLine {
	pick := func(get func(benchLine) float64) float64 {
		vs := make([]float64, len(runs))
		for i, r := range runs {
			vs[i] = get(r)
		}
		sort.Float64s(vs)
		if n := len(vs); n%2 == 1 {
			return vs[n/2]
		} else {
			return (vs[n/2-1] + vs[n/2]) / 2
		}
	}
	cpus := 0
	for _, r := range runs {
		if r.cpus > cpus {
			cpus = r.cpus
		}
	}
	return benchLine{
		NsPerOp:     pick(func(l benchLine) float64 { return l.NsPerOp }),
		BytesPerOp:  pick(func(l benchLine) float64 { return l.BytesPerOp }),
		AllocsPerOp: pick(func(l benchLine) float64 { return l.AllocsPerOp }),
		HopsPerSec:  pick(func(l benchLine) float64 { return l.HopsPerSec }),
		cpus:        cpus,
	}
}

func delta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur/base - 1) * 100
}
