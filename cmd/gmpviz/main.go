// Command gmpviz renders a multicast task as an SVG image: the deployment,
// the planarized graph, the executed forwarding trace (perimeter hops
// dashed red), and the task's source/destinations — a live version of the
// paper's route figures.
//
// Usage:
//
//	gmpviz -protocol GMP -nodes 600 -k 5 -seed 42 -o task.svg
//	gmpviz -tree -source 0,0 -dests "900,480;900,520" -o tree.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"gmp"
	"gmp/internal/geom"
	"gmp/internal/network"
	"gmp/internal/planar"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/steiner"
	"gmp/internal/view"
	"gmp/internal/viz"
	"gmp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmpviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gmpviz", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "GMP", "registered protocol to trace: "+
			strings.Join(registeredNames(), "|"))
		nodes    = fs.Int("nodes", 600, "deployed node count")
		k        = fs.Int("k", 5, "number of destinations")
		seed     = fs.Int64("seed", 1, "deployment and task seed")
		lambda   = fs.Float64("lambda", 0.3, "PBM trade-off parameter")
		out      = fs.String("o", "", "output file (default stdout)")
		treeMode = fs.Bool("tree", false, "render an rrSTR tree for explicit coordinates instead of a simulation")
		srcFlag  = fs.String("source", "0,0", "tree mode: source coordinate x,y")
		destFlag = fs.String("dests", "", "tree mode: destinations x,y;x,y;…")
		rr       = fs.Float64("rr", 150, "tree mode: radio range")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var svg string
	if *treeMode {
		s, err := renderTree(*srcFlag, *destFlag, *rr)
		if err != nil {
			return err
		}
		svg = s
	} else {
		s, err := renderSim(*protoName, *nodes, *k, *seed, *lambda)
		if err != nil {
			return err
		}
		svg = s
	}

	if *out == "" {
		fmt.Fprint(stdout, svg)
		return nil
	}
	return os.WriteFile(*out, []byte(svg), 0o644)
}

// registeredNames lists the registry's protocol names in display order.
func registeredNames() []string {
	specs := routing.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func renderSim(protoName string, nodes, k int, seed int64, lambda float64) (string, error) {
	r := rand.New(rand.NewSource(seed))
	deployed := network.DeployUniform(nodes, 1000, 1000, r)
	nw, err := network.New(deployed, 1000, 1000, 150)
	if err != nil {
		return "", err
	}
	pg := planar.Planarize(nw, planar.Gabriel)
	en := sim.NewEngine(nw, sim.DefaultRadioParams(), 100)
	en.SetViews(view.NewOracle(nw, pg))

	// Case-insensitive lookup against the protocol registry: gmpviz renders
	// whatever is registered, with no per-protocol wiring of its own.
	var proto gmp.Protocol
	for _, spec := range routing.Specs() {
		if strings.EqualFold(spec.Name, protoName) {
			p, err := routing.Make(spec.Name,
				routing.Ctx{Network: nw, Lambda: lambda, LambdaSet: true})
			if err != nil {
				return "", err
			}
			proto = p
			break
		}
	}
	if proto == nil {
		return "", fmt.Errorf("unknown protocol %q (registered: %s)",
			protoName, strings.Join(registeredNames(), ", "))
	}

	task, err := workload.Generate(r, nodes, k)
	if err != nil {
		return "", err
	}
	var events []sim.TraceEvent
	en.SetTracer(func(ev sim.TraceEvent) { events = append(events, ev) })
	en.RunTask(proto, task.Source, task.Dests)
	en.SetTracer(nil)
	return viz.RenderTask(nw, pg, events, task.Source, task.Dests), nil
}

func renderTree(srcFlag, destFlag string, rr float64) (string, error) {
	if destFlag == "" {
		return "", fmt.Errorf("tree mode needs -dests")
	}
	src, err := parsePoint(srcFlag)
	if err != nil {
		return "", fmt.Errorf("-source: %w", err)
	}
	var dests []steiner.Dest
	maxX, maxY := src.X, src.Y
	for i, part := range strings.Split(destFlag, ";") {
		p, err := parsePoint(part)
		if err != nil {
			return "", fmt.Errorf("-dests[%d]: %w", i, err)
		}
		dests = append(dests, steiner.Dest{Pos: p, Label: i})
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	tree := steiner.Build(src, dests, steiner.Options{RadioRange: rr, RadioAware: true})
	return viz.RenderTree(maxX+50, maxY+50, tree), nil
}

func parsePoint(s string) (geom.Point, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return geom.Point{}, fmt.Errorf("want x,y; got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}
