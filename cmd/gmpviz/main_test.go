package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVizSimToStdout(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-nodes", "300", "-k", "3", "-seed", "5"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an SVG document:\n%.120s", out)
	}
}

func TestVizTreeModeToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.svg")
	var b strings.Builder
	err := run([]string{"-tree", "-source", "0,0", "-dests", "400,180;400,220", "-o", path}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("file is not SVG")
	}
	if b.Len() != 0 {
		t.Fatal("stdout should be empty when -o is used")
	}
}

func TestVizTreeModeNeedsDests(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tree"}, &b); err == nil {
		t.Fatal("tree mode without -dests should error")
	}
}

func TestVizUnknownProtocol(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "BOGUS"}, &b); err == nil {
		t.Fatal("unknown protocol should error")
	}
}

func TestVizBadTreeCoordinates(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tree", "-source", "junk", "-dests", "1,2"}, &b); err == nil {
		t.Fatal("bad source should error")
	}
	if err := run([]string{"-tree", "-source", "0,0", "-dests", "junk"}, &b); err == nil {
		t.Fatal("bad dests should error")
	}
}
