// Command gmpd runs the hardened routing-decision daemon: a long-lived TCP
// service that answers stateless geographic-multicast routing decisions over
// the wire package's session protocol, for any distributed protocol in the
// routing registry (GMP by default).
//
// The daemon holds one deployment (a seeded uniform field plus its planar
// substrate) and turns frames into forward sets — the §2 location-is-address
// contract makes each decision a pure function of (deployment, frame), so
// the service keeps no per-packet state. Hardening is the deliverable:
// bounded admission with typed SHED answers, per-request deadlines,
// per-session idle timeouts, send backpressure with slow-client eviction,
// panic-isolated workers, and graceful drain on SIGINT/SIGTERM (stop
// accepting, finish in-flight work within -drain-budget, shed and report the
// rest, exit 0).
//
// Usage:
//
//	gmpd -addr 127.0.0.1:7447                 # serve the default field
//	gmpd -nodes 2000 -width 2000 -height 2000 # a bigger deployment
//	gmpd -workers 8 -queue 1024               # a beefier service envelope
//
// Beyond single decisions, a session can stream a whole multicast walk:
// one ROUTE request drives the server-side continuation (HOP per
// transmission, ROUTE_DONE summary), and a shared memo cache (-cache)
// recalls repeated decisions byte-identically. Profiling mirrors gmpsim:
// -cpuprofile/-memprofile write pprof artifacts, -pprof serves live
// net/http/pprof.
//
// Drive it with gmpload (-route for streamed walks), or any client
// speaking internal/wire's session protocol (HELLO, then DECIDEs/ROUTEs;
// answers are FORWARDS, HOP+ROUTE_DONE, ERROR, or SHED).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gmp/internal/planar"
	"gmp/internal/profiling"
	"gmp/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gmpd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored for tests: stop triggers the graceful
// drain (main wires it to SIGINT/SIGTERM), and ready, when non-nil, receives
// the bound address once the listener is up.
func run(args []string, out io.Writer, stop <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("gmpd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7447", "listen address")
		nodes      = fs.Int("nodes", 0, "deployment node count (0 = paper default 600)")
		width      = fs.Float64("width", 0, "field width in meters (0 = 1200)")
		height     = fs.Float64("height", 0, "field height in meters (0 = 1200)")
		radio      = fs.Float64("range", 0, "radio range in meters (0 = 100)")
		planarizer = fs.String("planarizer", "gabriel", "perimeter substrate: gabriel|rng")
		dseed      = fs.Int64("seed", 1, "deployment seed")

		workers  = fs.Int("workers", 0, "decision workers (0 = default 4)")
		queue    = fs.Int("queue", 0, "admission queue depth (0 = default 256)")
		reqTO    = fs.Duration("request-timeout", 0, "per-request deadline from admission (0 = 2s)")
		idleTO   = fs.Duration("idle-timeout", 0, "session idle eviction (0 = 30s)")
		writeTO  = fs.Duration("write-timeout", 0, "per-reply write deadline (0 = 5s)")
		sendBuf  = fs.Int("send-buffer", 0, "per-session outbound reply queue (0 = 64)")
		drainBud = fs.Duration("drain-budget", 0, "graceful-drain budget for in-flight work (0 = 5s)")
		retryAft = fs.Duration("retry-after", 0, "retry hint carried in SHED answers (0 = 50ms)")
		lambda   = fs.Float64("lambda", 0.5, "PBM λ for FlagLambda protocols")
		k        = fs.Int("k", 0, "LGK group-size bound (0 = protocol default)")

		cacheSize = fs.Int("cache", 0, "decision memo cache entries (0 = default 4096, negative disables)")
		routeBud  = fs.Int("route-budget", 0, "default per-copy hop budget for ROUTE walks (0 = 256)")

		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		pprofSrv = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live inspection")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := profiling.Start(profiling.Config{
		CPUProfile: *cpuProf, MemProfile: *memProf, PprofAddr: *pprofSrv,
		Name: "gmpd"})
	if err != nil {
		return err
	}
	defer stopProf()

	dc := serve.DefaultDeploy()
	dc.Seed = *dseed
	if *nodes > 0 {
		dc.Nodes = *nodes
	}
	if *width > 0 {
		dc.Width = *width
	}
	if *height > 0 {
		dc.Height = *height
	}
	if *radio > 0 {
		dc.RadioRange = *radio
	}
	switch *planarizer {
	case "gabriel":
		dc.Planarizer = planar.Gabriel
	case "rng":
		dc.Planarizer = planar.RelativeNeighborhood
	default:
		return fmt.Errorf("unknown -planarizer %q (want gabriel or rng)", *planarizer)
	}

	dep, err := serve.NewDeployment(dc)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := serve.New(dep, serve.Config{
		Workers: *workers, QueueDepth: *queue,
		RequestTimeout: *reqTO, IdleTimeout: *idleTO, WriteTimeout: *writeTO,
		SendBuffer: *sendBuf, DrainBudget: *drainBud, RetryAfter: *retryAft,
		Lambda: *lambda, K: *k,
		CacheSize: *cacheSize, RouteBudget: *routeBud,
	})

	fmt.Fprintf(out, "gmpd: serving %d nodes (%.0fx%.0f m, range %.0f, %s) on %s\n",
		dc.Nodes, dc.Width, dc.Height, dc.RadioRange, dc.Planarizer, ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case <-stop:
		fmt.Fprintln(out, "gmpd: draining...")
	case err := <-serveErr:
		// Listener died without a drain: surface it after shutting down.
		rep := srv.Drain()
		printDrain(out, rep)
		return err
	}
	rep := srv.Drain()
	<-serveErr // accept loop returns nil once the listener closes for drain
	printDrain(out, rep)
	return nil
}

// printDrain renders the drain report: the shed/answer accounting the
// operator needs to know whether the shutdown lost anything (it cannot lose
// silently — everything unserved was shed with an answer).
func printDrain(out io.Writer, rep serve.DrainReport) {
	st := rep.Stats
	state := "clean"
	if !rep.Clean {
		state = fmt.Sprintf("budget hit, %d flushed", rep.Flushed)
	}
	fmt.Fprintf(out, "gmpd: drained in %v (%s)\n", rep.Elapsed.Round(time.Millisecond), state)
	fmt.Fprintf(out, "gmpd: sessions %d  admitted %d  forwards %d  routes %d (%d hops)  errors %d  shed %d (queue %d, deadline %d, draining %d)  evicted %d\n",
		st.Sessions, st.Admitted, st.AnsweredForwards, st.AnsweredRoutes, st.RouteHops,
		st.AnsweredErrors, st.Shed(), st.ShedQueue, st.ShedDeadline, st.ShedDraining, st.Evicted)
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Fprintf(out, "gmpd: cache hits %d  misses %d  evictions %d\n",
			st.CacheHits, st.CacheMisses, st.CacheEvictions)
	}
	if err := st.CheckConservation(); err != nil {
		fmt.Fprintf(out, "gmpd: CONSERVATION VIOLATION: %v\n", err)
	}
}
