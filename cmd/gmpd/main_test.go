package main

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/serve"
	"gmp/internal/wire"
)

// TestDaemonServeAndDrain boots the daemon on a small field, runs a real
// session against it, then triggers the signal path and checks the drain
// report: exit is clean (nil error), the accounting is printed, and the
// conservation line never fires.
func TestDaemonServeAndDrain(t *testing.T) {
	var out strings.Builder
	var mu sync.Mutex // out is written by the daemon goroutine, read at the end
	w := lockedWriter{mu: &mu, b: &out}

	stop := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-nodes", "150", "-width", "500", "-height", "500", "-range", "100",
		}, w, stop, func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c, err := serve.Dial(addr, "GMP", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	f := &wire.Frame{Source: geom.Pt(100, 100), NextHop: geom.Pt(100, 100),
		Dests: []geom.Point{geom.Pt(400, 400), geom.Pt(50, 420)}}
	data, err := wire.Encode(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Do(wire.DecideBody{Op: wire.OpStart, Frame: data})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if rep.Kind != wire.MsgForwards || len(rep.Forwards) == 0 {
		t.Fatalf("want FORWARDS with hops, got kind %d forwards %d", rep.Kind, len(rep.Forwards))
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}

	mu.Lock()
	got := out.String()
	mu.Unlock()
	for _, want := range []string{"gmpd: serving 150 nodes", "drained in", "admitted 1", "forwards 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "CONSERVATION VIOLATION") {
		t.Errorf("conservation violated:\n%s", got)
	}
}

func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-planarizer", "delaunay"}, &out, nil, nil); err == nil {
		t.Fatal("want error for unknown planarizer")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
