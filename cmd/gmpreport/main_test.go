package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportQuickToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.html")
	var b strings.Builder
	err := run([]string{"-quick", "-o", path}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{
		"<!DOCTYPE html>", "Figure 11", "Figure 12", "Figure 14", "Figure 15",
		"λ trade-off", "<svg",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Fatalf("status line missing: %q", b.String())
	}
}

func TestReportExtensionsQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ext.html")
	var b strings.Builder
	if err := run([]string{"-quick", "-extensions", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"E-X1", "E-X2", "E-X3", "E-X5", "E-X6", "E-X7"} {
		if !strings.Contains(html, want) {
			t.Fatalf("extensions report missing %s", want)
		}
	}
}

func TestReportStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-o", "-"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "<!DOCTYPE html>") {
		t.Fatal("stdout should carry the document")
	}
}
