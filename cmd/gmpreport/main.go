// Command gmpreport runs the full reproduction campaign and writes a
// self-contained HTML report with charts of every figure: the shareable
// artifact of a reproduction run.
//
// Usage:
//
//	gmpreport -o report.html            # full Table 1 campaign (minutes)
//	gmpreport -quick -o report.html     # scaled-down smoke campaign
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gmp/internal/experiment"
	"gmp/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmpreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gmpreport", flag.ContinueOnError)
	var (
		out        = fs.String("o", "report.html", "output HTML file (- for stdout)")
		quick      = fs.Bool("quick", false, "scaled-down campaign")
		seed       = fs.Int64("seed", 0, "override campaign seed")
		extensions = fs.Bool("extensions", false, "include the E-X robustness/localization/staleness extensions (slower)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.Default()
	if *quick {
		cfg = experiment.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	rep := report.New(
		"GMP reproduction report",
		fmt.Sprintf("Wu & Candan, ICDCS 2006 — %d nodes, %d networks × %d tasks, seed %d",
			cfg.Nodes, cfg.Networks, cfg.TasksPerNet, cfg.Seed),
	)

	res, err := experiment.RunMain(cfg, experiment.AllProtocols())
	if err != nil {
		return err
	}
	rep.Add(res.TotalHops, "Paper claim: GMP lowest; reduction vs PBM and LGS up to 25%.")
	rep.Add(res.PerDestHops, "Paper claim: PBM ≈ GMP ≈ SMT close to GRD; LGS clearly worse.")
	rep.Add(res.Energy, "Paper claim: energy mirrors total hops; GMP saves ~25% vs PBM/LGS.")

	fc := experiment.DefaultFailureConfig()
	if *quick {
		fc = experiment.QuickFailureConfig()
	}
	fc.Base.Seed = cfg.Seed
	ftbl, err := experiment.RunFailures(fc, []string{
		experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGMP,
	})
	if err != nil {
		return err
	}
	rep.Add(ftbl, "Paper claim: failures rise as density falls; LGS worst, GMP best. "+
		"Densities below the paper's 400-node floor exercise the geometric-void regime (ideal MAC).")

	ltbl, err := experiment.LambdaSweep(cfg, middleK(cfg))
	if err != nil {
		return err
	}
	rep.Add(ltbl, "PBM's λ trade-off (§5.1): larger λ merges copies at the cost of per-destination progress.")

	if *extensions {
		rc := experiment.DefaultRobustnessConfig()
		if *quick {
			rc = experiment.QuickRobustnessConfig()
		}
		rc.Base.Seed = cfg.Seed
		rtbl, err := experiment.RunRobustness(rc, []string{
			experiment.ProtoGMP, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		rep.Add(rtbl, "E-X1: random radio failures; stateless protocols degrade gracefully.")

		lc := experiment.DefaultLocalizationConfig()
		if *quick {
			lc = experiment.QuickLocalizationConfig()
		}
		lc.Base.Seed = cfg.Seed
		lres, err := experiment.RunLocalization(lc, []string{
			experiment.ProtoGMP, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		rep.Add(lres.Delivery, "E-X2: GPS error on reported positions; physics truthful.")
		rep.Add(lres.TotalHops, "E-X2: detour cost of misjudged progress.")

		sc := experiment.DefaultStalenessConfig()
		if *quick {
			sc = experiment.QuickStalenessConfig()
		}
		sc.Base.Seed = cfg.Seed
		stbl, err := experiment.RunStaleness(sc, []string{
			experiment.ProtoGMP, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		rep.Add(stbl, "E-X3: destination coordinates stale under random-waypoint mobility.")

		ld := experiment.DefaultLoadConfig()
		if *quick {
			ld = experiment.QuickLoadConfig()
		}
		ld.Base.Seed = cfg.Seed
		ldtbl, err := experiment.RunLoad(ld, []string{experiment.ProtoGMP, experiment.ProtoGRD})
		if err != nil {
			return err
		}
		rep.Add(ldtbl, "E-X5: delivery latency under concurrent sessions (half-duplex senders).")

		bcn := experiment.DefaultBeaconConfig()
		if *quick {
			bcn = experiment.QuickBeaconConfig()
		}
		bcn.Base.Seed = cfg.Seed
		bres, err := experiment.RunBeaconing(bcn)
		if err != nil {
			return err
		}
		rep.Add(bres.PosError, "E-X6: neighbor-table position error vs beacon period.")
		rep.Add(bres.EnergyPerHour, "E-X6: the control-plane energy that buys it.")

		cl := experiment.DefaultClusteringConfig()
		if *quick {
			cl = experiment.QuickClusteringConfig()
		}
		cl.Base.Seed = cfg.Seed
		cltbl, err := experiment.RunClustering(cl, []string{
			experiment.ProtoGMP, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		rep.Add(cltbl, "E-X7: multicast's advantage grows as destinations cluster.")
	}

	html := rep.HTML(time.Now())
	if *out == "-" {
		_, err = io.WriteString(stdout, html)
		return err
	}
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d sections)\n", *out, rep.Len())
	return nil
}

func middleK(cfg experiment.Config) int {
	if len(cfg.Ks) == 0 {
		return 12
	}
	return cfg.Ks[len(cfg.Ks)/2]
}
