// Command gmpload drives a running gmpd with synthetic decision traffic and
// reports what the daemon sustained: decisions/sec plus p50/p95/p99 answer
// latency, with the full client-side ledger (answers by kind, retries,
// transport errors) that the E-X13 campaign audits against the server's own
// conservation counters.
//
// The generator runs -conns concurrent session clients, each issuing -n
// requests of -k random destination locations over the deployment geometry.
// Closed loop by default (next request as soon as the answer lands); -rate
// switches each connection to an open loop at a fixed offered rate. SHED
// answers are retried with jittered exponential backoff under a hard
// attempt/time budget — the cooperative half of the daemon's load-shedding
// contract.
//
// -route switches to whole-route workloads: each "request" is one complete
// multicast walk, and latency percentiles are per route. "stream" issues a
// single ROUTE and reads the server's HOP stream (-quiet suppresses it);
// "perhop" walks the identical routes client-side, one DECIDE round trip
// per decision — the baseline the streamed mode is measured against.
//
// Usage:
//
//	gmpload -addr 127.0.0.1:7447 -conns 8 -n 500 -k 10
//	gmpload -addr 127.0.0.1:7447 -rate 200 -protocol PBM
//	gmpload -addr 127.0.0.1:7447 -route stream -n 50 -k 20
//	gmpload -addr 127.0.0.1:7447 -route perhop -n 50 -k 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gmp/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmpload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gmpload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7447", "gmpd address")
		protocol = fs.String("protocol", "GMP", "protocol to request decisions for")
		conns    = fs.Int("conns", 4, "concurrent session clients")
		requests = fs.Int("n", 100, "requests (or routes, with -route) per connection")
		rate     = fs.Float64("rate", 0, "open-loop requests/sec per connection (0 = closed loop)")
		k        = fs.Int("k", 5, "destinations per request")
		width    = fs.Float64("width", 1200, "deployment width requests draw locations from")
		height   = fs.Float64("height", 1200, "deployment height")
		seed     = fs.Int64("seed", 1, "workload seed")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request round-trip timeout")
		payload  = fs.Int("payload", 0, "application payload bytes per request")
		retries  = fs.Int("retries", 5, "max attempts per request on SHED (1 = no retry)")

		route  = fs.String("route", "", "whole-route mode: stream (one ROUTE, server walks) or perhop (one DECIDE per hop)")
		budget = fs.Int("budget", 0, "per-copy hop budget for -route (0 = server default)")
		quiet  = fs.Bool("quiet", false, "with -route stream: suppress the HOP stream, summary only")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *route {
	case "", "stream", "perhop":
	default:
		return fmt.Errorf("unknown -route %q (want stream or perhop)", *route)
	}

	pol := serve.DefaultRetry()
	pol.MaxAttempts = *retries

	rep := serve.RunLoad(serve.LoadConfig{
		Addr: *addr, Protocol: *protocol,
		Conns: *conns, Requests: *requests, Rate: *rate,
		K: *k, Width: *width, Height: *height,
		Seed: *seed, Timeout: *timeout, Payload: *payload,
		Retry:     pol,
		RouteMode: *route, HopBudget: *budget, Quiet: *quiet,
	})
	if *route != "" {
		printRouteReport(out, rep)
	} else {
		printReport(out, rep)
	}
	if rep.DialErrors > 0 && rep.Answered() == 0 && rep.Routes == 0 {
		return fmt.Errorf("no connection reached the daemon at %s", *addr)
	}
	return nil
}

// printReport renders the ledger. Offered = conns*n is what the schedule
// wanted; everything below accounts for where each request ended up.
func printReport(out io.Writer, rep *serve.LoadReport) {
	fmt.Fprintf(out, "gmpload: %d answered in %v  (%.0f decisions/s sustained)\n",
		rep.Answered(), rep.Elapsed.Round(time.Millisecond), rep.DecisionsPerSec())
	fmt.Fprintf(out, "gmpload: forwards %d  errors %d  sheds %d  retries %d  transport-errors %d  dial-errors %d  drains %d\n",
		rep.Forwards, rep.Errors, rep.Sheds, rep.Retries, rep.TransportErrors, rep.DialErrors, rep.Drains)
	if len(rep.LatencyMs) > 0 {
		fmt.Fprintf(out, "gmpload: latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
			rep.Percentile(0.50), rep.Percentile(0.95), rep.Percentile(0.99))
	}
}

// printRouteReport renders the whole-route ledger: route completion rate,
// the transmissions those walks performed, and per-route latency
// percentiles — the numbers a stream-vs-perhop pair is compared on.
func printRouteReport(out io.Writer, rep *serve.LoadReport) {
	fmt.Fprintf(out, "gmpload: %d routes in %v  (%.0f routes/s, %.0f hops/s sustained)\n",
		rep.Routes, rep.Elapsed.Round(time.Millisecond), rep.RoutesPerSec(), rep.RouteHopsPerSec())
	fmt.Fprintf(out, "gmpload: decides sent %d  route hops %d  errors %d  sheds %d  transport-errors %d  dial-errors %d  drains %d\n",
		rep.Sent, rep.RouteHops, rep.Errors, rep.Sheds, rep.TransportErrors, rep.DialErrors, rep.Drains)
	if len(rep.LatencyMs) > 0 {
		fmt.Fprintf(out, "gmpload: route latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
			rep.Percentile(0.50), rep.Percentile(0.95), rep.Percentile(0.99))
	}
}
