package main

import (
	"net"
	"strings"
	"testing"

	"gmp/internal/planar"
	"gmp/internal/serve"
)

// TestLoadAgainstDaemon runs the generator against an in-process server and
// checks the rendered ledger: every offered request answered as FORWARDS,
// latency percentiles present, no transport errors.
func TestLoadAgainstDaemon(t *testing.T) {
	dep, err := serve.NewDeployment(serve.DeployConfig{
		Nodes: 150, Width: 500, Height: 500, RadioRange: 100,
		Planarizer: planar.Gabriel, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(dep, serve.Config{})
	go srv.Serve(ln)
	defer srv.Drain()

	var out strings.Builder
	err = run([]string{
		"-addr", ln.Addr().String(),
		"-conns", "2", "-n", "5", "-k", "3",
		"-width", "500", "-height", "500",
		"-timeout", "10s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"10 answered", "forwards 10", "transport-errors 0", "latency p50"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRouteAgainstDaemon drives both whole-route modes against one daemon
// and checks the route ledger renders: completed routes, hops, per-route
// latency. The same seed walks the same routes, so perhop must report the
// same transmissions the stream summaries did.
func TestRouteAgainstDaemon(t *testing.T) {
	dep, err := serve.NewDeployment(serve.DeployConfig{
		Nodes: 150, Width: 500, Height: 500, RadioRange: 100,
		Planarizer: planar.Gabriel, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(dep, serve.Config{})
	go srv.Serve(ln)
	defer srv.Drain()

	for _, mode := range []string{"stream", "perhop"} {
		var out strings.Builder
		err = run([]string{
			"-addr", ln.Addr().String(),
			"-route", mode,
			"-conns", "2", "-n", "3", "-k", "4",
			"-width", "500", "-height", "500",
			"-timeout", "10s",
		}, &out)
		if err != nil {
			t.Fatalf("run -route %s: %v\n%s", mode, err, out.String())
		}
		got := out.String()
		for _, want := range []string{"6 routes", "transport-errors 0", "route latency p50"} {
			if !strings.Contains(got, want) {
				t.Errorf("-route %s output missing %q:\n%s", mode, want, got)
			}
		}
	}
}

func TestBadRouteMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-route", "sideways"}, &out); err == nil {
		t.Fatal("want error for unknown -route mode")
	}
}

func TestNoDaemon(t *testing.T) {
	// A port nothing listens on: every dial fails, and that must be an error,
	// not a silent zero-row report.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	var out strings.Builder
	if err := run([]string{"-addr", addr, "-conns", "1", "-n", "1", "-timeout", "500ms"}, &out); err == nil {
		t.Fatalf("want error when no daemon listens:\n%s", out.String())
	}
}
