// Command gmpsim regenerates the paper's evaluation figures (Wu & Candan,
// "GMP: Distributed Geographic Multicast Routing in Wireless Sensor
// Networks", ICDCS 2006) on the library's discrete-event simulator.
//
// Usage:
//
//	gmpsim -experiment totalhops            # Figure 11
//	gmpsim -experiment perdest              # Figure 12
//	gmpsim -experiment energy               # Figure 14
//	gmpsim -experiment failures             # Figure 15
//	gmpsim -experiment loss                 # Figure 15 under link loss, ± ARQ
//	gmpsim -experiment lambda               # PBM λ ablation (A-3)
//	gmpsim -experiment setup                # Table 1 parameters
//	gmpsim -experiment scale -shards 4      # E-X10: 10⁴ → 10⁶ nodes, sharded kernel
//	gmpsim -experiment delivery             # E-X12: delivery guarantee on adversarial topologies
//	gmpsim -experiment serve                # E-X13: gmpd under overload and transport chaos
//	gmpsim -experiment stream               # E-X14: streamed routes vs per-hop, memo cache on/off
//	gmpsim -experiment all                  # everything
//
// The -quick flag runs a scaled-down campaign (seconds instead of minutes);
// -csv switches output to CSV for plotting. The -loss, -edgeloss, -crash and
// -arq flags inject faults (lossy links, node crashes, hop-by-hop ARQ) into
// every engine any experiment builds; -experiment loss runs the dedicated
// loss-rate sweep comparing all protocols with and without ARQ.
//
// Every experiment runs on the campaign runner's bounded worker pool;
// -workers caps the pool (0 = one worker per CPU) and -progress renders a
// live cells-completed counter on stderr. Output is byte-identical for any
// worker count.
//
// Profiling: -cpuprofile, -memprofile and -trace write the standard pprof /
// runtime-trace artifacts for the whole run; -pprof addr serves
// net/http/pprof on addr for live inspection of long campaigns, e.g.
//
//	gmpsim -experiment all -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"gmp/internal/experiment"
	"gmp/internal/profiling"
	"gmp/internal/sim"
	"gmp/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gmpsim", flag.ContinueOnError)
	var (
		exp      = fs.String("experiment", "all", "setup|totalhops|perdest|energy|failures|loss|lambda|compare|robustness|localization|staleness|lifetime|load|beaconing|clustering|chaos|churn|scale|delivery|serve|stream|all")
		quick    = fs.Bool("quick", false, "scaled-down campaign for smoke runs")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = fs.Bool("json", false, "emit JSON instead of aligned tables")
		seed     = fs.Int64("seed", 0, "override campaign seed (0 = config default)")
		nodes    = fs.Int("nodes", 0, "override node count (0 = config default)")
		networks = fs.Int("networks", 0, "override number of deployments")
		tasks    = fs.Int("tasks", 0, "override tasks per deployment")
		ks       = fs.String("ks", "", "override destination-count sweep, e.g. 3,5,10")
		protos   = fs.String("protocols", "", "comma-separated protocol subset (default: the paper's set; registered: "+
			strings.Join(experiment.RegisteredProtocols(), ",")+")")
		confPath = fs.String("config", "", "JSON campaign config file (see -dumpconfig for the schema)")
		dumpConf = fs.Bool("dumpconfig", false, "print the effective campaign config as JSON and exit")
		pair     = fs.String("pair", "GMP,LGS", "for -experiment compare: the two protocols, A,B")
		kFlag    = fs.Int("k", 12, "for -experiment compare: destination count")
		outDir   = fs.String("outdir", "", "also write each table as <outdir>/<slug>.json and .csv")
		loss     = fs.Float64("loss", 0, "inject uniform per-link loss with this probability into every engine")
		edgeLoss = fs.Float64("edgeloss", 0, "inject distance-dependent loss: this probability at full radio range, scaled (d/R)^2")
		crash    = fs.Float64("crash", 0, "crash this fraction of nodes at random times early in each task")
		arq      = fs.Bool("arq", false, "enable hop-by-hop ARQ (ACKs + retransmissions)")
		workers  = fs.Int("workers", 0, "max concurrent simulation cells (0 = one per CPU); output is identical for any value")
		shards   = fs.Int("shards", 0, "for -experiment scale: sharded-kernel worker count (0 = one per CPU); deterministic output is identical for any value")
		progress = fs.Bool("progress", false, "render a live cells-completed counter on stderr")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = fs.String("trace", "", "write a runtime execution trace to this file")
		pprofSrv = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live inspection")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := profiling.Start(profiling.Config{
		CPUProfile: *cpuProf, MemProfile: *memProf,
		Trace: *traceOut, PprofAddr: *pprofSrv, Name: "gmpsim"})
	if err != nil {
		return err
	}
	defer stopProf()

	// SIGINT/SIGTERM cancel the campaign between cells: the runner stops
	// handing out work, in-flight cells finish, and the run exits with the
	// context's error instead of an interrupted half-written table.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := experiment.Default()
	if *quick {
		cfg = experiment.Quick()
	}
	if *confPath != "" {
		data, err := os.ReadFile(*confPath)
		if err != nil {
			return fmt.Errorf("-config: %w", err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return fmt.Errorf("-config %s: %w", *confPath, err)
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *nodes != 0 {
		cfg.Nodes = *nodes
	}
	if *networks != 0 {
		cfg.Networks = *networks
	}
	if *tasks != 0 {
		cfg.TasksPerNet = *tasks
	}
	if *ks != "" {
		parsed, err := parseInts(*ks)
		if err != nil {
			return fmt.Errorf("-ks: %w", err)
		}
		cfg.Ks = parsed
	}
	// Nonzero values pass through even when negative, so validation can
	// reject them instead of the flag being silently ignored.
	if *loss != 0 {
		cfg.Faults.LossRate = *loss
	}
	if *edgeLoss != 0 {
		cfg.Faults.EdgeLoss = *edgeLoss
	}
	if *crash != 0 {
		cfg.CrashFraction = *crash
	}
	if *arq {
		cfg.ARQ = sim.DefaultARQ()
	}
	if *workers != 0 {
		cfg.Workers = *workers
	}
	if *progress {
		cfg.Progress = progressPrinter(os.Stderr)
	}
	cfg.Ctx = ctx
	protoList := experiment.AllProtocols()
	if *protos != "" {
		protoList = strings.Split(*protos, ",")
	}
	if *dumpConf {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-outdir: %w", err)
		}
	}
	var emitErr error
	emit := func(t *stats.Table) {
		switch {
		case *jsonOut:
			data, err := json.Marshal(t)
			if err != nil {
				emitErr = err
				return
			}
			fmt.Fprintln(out, string(data))
		case *csv:
			fmt.Fprint(out, t.CSV())
		default:
			fmt.Fprintln(out, t.Render())
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, t); err != nil && emitErr == nil {
				emitErr = err
			}
		}
	}
	defer func() {
		if emitErr != nil {
			fmt.Fprintln(os.Stderr, "gmpsim: emit:", emitErr)
		}
	}()

	switch *exp {
	case "setup":
		printSetup(out, cfg)
	case "totalhops", "perdest", "energy":
		res, err := experiment.RunMain(cfg, protoList)
		if err != nil {
			return err
		}
		switch *exp {
		case "totalhops":
			emit(res.TotalHops)
		case "perdest":
			emit(res.PerDestHops)
		case "energy":
			emit(res.Energy)
		}
	case "failures":
		fc := experiment.DefaultFailureConfig()
		if *quick {
			fc = experiment.QuickFailureConfig()
		}
		inheritRun(&fc.Base, cfg)
		tbl, err := experiment.RunFailures(fc, []string{
			experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGMP,
		})
		if err != nil {
			return err
		}
		emit(tbl)
	case "loss":
		lsc := experiment.DefaultLossConfig()
		if *quick {
			lsc = experiment.QuickLossConfig()
		}
		inheritRun(&lsc.Base, cfg)
		if *arq {
			lsc.ARQ = sim.DefaultARQ()
		}
		res, err := experiment.RunLoss(lsc, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoLGS,
		})
		if err != nil {
			return err
		}
		emit(res.Failures)
		emit(res.Transmissions)
		emit(res.Energy)
	case "robustness":
		rc := experiment.DefaultRobustnessConfig()
		if *quick {
			rc = experiment.QuickRobustnessConfig()
		}
		inheritRun(&rc.Base, cfg)
		tbl, err := experiment.RunRobustness(rc, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		emit(tbl)
	case "localization":
		lc := experiment.DefaultLocalizationConfig()
		if *quick {
			lc = experiment.QuickLocalizationConfig()
		}
		inheritRun(&lc.Base, cfg)
		res, err := experiment.RunLocalization(lc, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		emit(res.Delivery)
		emit(res.TotalHops)
	case "staleness":
		sc := experiment.DefaultStalenessConfig()
		if *quick {
			sc = experiment.QuickStalenessConfig()
		}
		inheritRun(&sc.Base, cfg)
		tbl, err := experiment.RunStaleness(sc, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		emit(tbl)
	case "lifetime":
		lt := experiment.DefaultLifetimeConfig()
		if *quick {
			lt = experiment.QuickLifetimeConfig()
		}
		inheritRun(&lt.Base, cfg)
		res, err := experiment.RunLifetime(lt, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		emit(res.FirstDeath)
		emit(res.FirstFailure)
	case "load":
		ld := experiment.DefaultLoadConfig()
		if *quick {
			ld = experiment.QuickLoadConfig()
		}
		inheritRun(&ld.Base, cfg)
		tbl, err := experiment.RunLoad(ld, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		emit(tbl)
	case "beaconing":
		bcfg := experiment.DefaultBeaconConfig()
		if *quick {
			bcfg = experiment.QuickBeaconConfig()
		}
		inheritRun(&bcfg.Base, cfg)
		res, err := experiment.RunBeaconing(bcfg)
		if err != nil {
			return err
		}
		emit(res.PosError)
		emit(res.MissingFrac)
		emit(res.EnergyPerHour)
	case "clustering":
		cc := experiment.DefaultClusteringConfig()
		if *quick {
			cc = experiment.QuickClusteringConfig()
		}
		inheritRun(&cc.Base, cfg)
		tbl, err := experiment.RunClustering(cc, []string{
			experiment.ProtoGMP, experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGRD,
		})
		if err != nil {
			return err
		}
		emit(tbl)
	case "chaos":
		cc := experiment.DefaultChaosConfig()
		if *quick {
			cc = experiment.QuickChaosConfig()
		}
		inheritRun(&cc.Base, cfg)
		if *protos != "" {
			cc.Protos = protoList
		}
		rep, err := experiment.RunChaos(cc)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Render())
		if len(rep.Violations) > 0 {
			return fmt.Errorf("chaos: %d invariant violations", len(rep.Violations))
		}
	case "churn":
		cc := experiment.DefaultChurnConfig()
		if *quick {
			cc = experiment.QuickChurnConfig()
		}
		inheritRun(&cc.Base, cfg)
		if *protos != "" {
			cc.Protos = protoList
		}
		rep, err := experiment.RunChurn(cc)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Render())
		if len(rep.Violations) > 0 {
			return fmt.Errorf("churn: %d invariant violations", len(rep.Violations))
		}
	case "scale":
		sc := experiment.DefaultScaleConfig()
		if *quick {
			sc = experiment.QuickScaleConfig()
		}
		sc.Seed = cfg.Seed
		sc.Progress = cfg.Progress
		sc.Ctx = ctx
		sc.Shards = *shards
		if *protos != "" {
			sc.Protos = protoList
		}
		rep, err := experiment.RunScale(sc)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Render())
		var violations int
		for _, a := range rep.Arms {
			violations += len(a.Violations)
		}
		if violations > 0 {
			return fmt.Errorf("scale: %d invariant violations", violations)
		}
	case "delivery":
		dc := experiment.DefaultDeliveryConfig()
		if *quick {
			dc = experiment.QuickDeliveryConfig()
		}
		if *seed != 0 {
			dc.Seed = *seed
		}
		dc.Progress = cfg.Progress
		dc.Ctx = ctx
		if *protos != "" {
			dc.Protos = protoList
		}
		rep, err := experiment.RunDelivery(dc)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Render())
		if v := rep.Violations(); len(v) > 0 {
			return fmt.Errorf("delivery: %d invariant violations", len(v))
		}
	case "serve":
		sc := experiment.DefaultServeConfig()
		if *quick {
			sc = experiment.QuickServeConfig()
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		sc.Progress = cfg.Progress
		sc.Ctx = ctx
		rep, err := experiment.RunServe(sc)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Render())
		if v := rep.Violations(); len(v) > 0 {
			return fmt.Errorf("serve: %d invariant violations", len(v))
		}
	case "stream":
		tc := experiment.DefaultStreamConfig()
		if *quick {
			tc = experiment.QuickStreamConfig()
		}
		if *seed != 0 {
			tc.Seed = *seed
		}
		tc.Progress = cfg.Progress
		tc.Ctx = ctx
		rep, err := experiment.RunStream(tc)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Render())
		if v := rep.Violations(); len(v) > 0 {
			return fmt.Errorf("stream: %d invariant violations", len(v))
		}
	case "compare":
		parts := strings.Split(*pair, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-pair wants A,B; got %q", *pair)
		}
		res, err := experiment.CompareProtocols(cfg, strings.TrimSpace(parts[0]),
			strings.TrimSpace(parts[1]), *kFlag)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.String())
	case "lambda":
		k := 12
		if len(cfg.Ks) > 0 {
			k = cfg.Ks[len(cfg.Ks)/2]
		}
		tbl, err := experiment.LambdaSweep(cfg, k)
		if err != nil {
			return err
		}
		emit(tbl)
	case "all":
		printSetup(out, cfg)
		res, err := experiment.RunMain(cfg, protoList)
		if err != nil {
			return err
		}
		emit(res.TotalHops)
		emit(res.PerDestHops)
		emit(res.Energy)
		emit(res.FailureRate)
		fc := experiment.DefaultFailureConfig()
		if *quick {
			fc = experiment.QuickFailureConfig()
		}
		inheritRun(&fc.Base, cfg)
		ftbl, err := experiment.RunFailures(fc, []string{
			experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGMP,
		})
		if err != nil {
			return err
		}
		emit(ftbl)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// inheritRun copies the run-level knobs — seed, worker cap and progress
// sink — from the effective CLI config onto a sub-experiment's base config,
// so every experiment honors -seed, -workers and -progress uniformly.
func inheritRun(base *experiment.Config, cfg experiment.Config) {
	base.Seed = cfg.Seed
	base.Workers = cfg.Workers
	base.Progress = cfg.Progress
}

// progressPrinter renders a live "done/total cells" counter on w, ending
// the line when the campaign completes. The runner serializes calls.
func progressPrinter(w io.Writer) experiment.ProgressFunc {
	return func(done, total int) {
		fmt.Fprintf(w, "\r%d/%d cells", done, total)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}

func printSetup(out io.Writer, cfg experiment.Config) {
	fmt.Fprintln(out, "Table 1: simulation setup")
	fmt.Fprintf(out, "  Network size        %.0fm x %.0fm\n", cfg.Width, cfg.Height)
	fmt.Fprintf(out, "  Number of nodes     %d\n", cfg.Nodes)
	fmt.Fprintf(out, "  Channel data rate   %.0f Mbps\n", cfg.Radio.DataRateBps/1e6)
	fmt.Fprintf(out, "  Transmission power  %.1f W\n", cfg.Radio.TxPowerW)
	fmt.Fprintf(out, "  Receiving power     %.1f W\n", cfg.Radio.RxPowerW)
	fmt.Fprintf(out, "  Message size        %d B\n", cfg.Radio.MessageBytes)
	fmt.Fprintf(out, "  Radio range         %.0f m\n", cfg.RadioRange)
	fmt.Fprintf(out, "  Networks x tasks    %d x %d\n", cfg.Networks, cfg.TasksPerNet)
	fmt.Fprintf(out, "  Destination sweep   %v\n", cfg.Ks)
	fmt.Fprintf(out, "  Hop budget          %d\n", cfg.MaxHops)
	fmt.Fprintf(out, "  Seed                %d\n", cfg.Seed)
	fmt.Fprintln(out)
}

// writeArtifacts saves a table as both JSON and CSV under dir, named by a
// slug of its title.
func writeArtifacts(dir string, t *stats.Table) error {
	slug := slugify(t.Title)
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, slug+".json"), data, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, slug+".csv"), []byte(t.CSV()), 0o644)
}

// slugify reduces a table title to a safe file stem.
func slugify(title string) string {
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
