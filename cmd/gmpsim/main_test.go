package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestSetupExperiment(t *testing.T) {
	out := runCapture(t, "-experiment", "setup")
	for _, want := range []string{
		"Table 1", "1000m x 1000m", "1.3 W", "0.9 W", "128 B", "150 m", "10 x 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("setup output missing %q:\n%s", want, out)
		}
	}
}

func TestTotalHopsQuick(t *testing.T) {
	out := runCapture(t, "-experiment", "totalhops", "-quick",
		"-networks", "1", "-tasks", "3", "-ks", "4",
		"-protocols", "GMP,GRD")
	for _, want := range []string{"Figure 11", "GMP", "GRD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	out := runCapture(t, "-experiment", "perdest", "-quick",
		"-networks", "1", "-tasks", "3", "-ks", "4",
		"-protocols", "GMP", "-csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "k,GMP" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
}

func TestJSONOutput(t *testing.T) {
	out := runCapture(t, "-experiment", "perdest", "-quick",
		"-networks", "1", "-tasks", "3", "-ks", "4",
		"-protocols", "GMP", "-json")
	if !strings.HasPrefix(strings.TrimSpace(out), "{") ||
		!strings.Contains(out, `"series"`) || !strings.Contains(out, `"GMP"`) {
		t.Fatalf("not JSON: %s", out)
	}
}

func TestLambdaQuick(t *testing.T) {
	out := runCapture(t, "-experiment", "lambda", "-quick",
		"-networks", "1", "-tasks", "2", "-ks", "4")
	if !strings.Contains(out, "λ") && !strings.Contains(out, "lambda") {
		t.Fatalf("lambda table missing:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "wat"}, &b); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestBadProtocol(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-experiment", "totalhops", "-quick", "-protocols", "NOPE"}, &b)
	if err == nil {
		t.Fatal("bad protocol should error")
	}
}

func TestBadKs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "totalhops", "-ks", "3,x"}, &b); err == nil {
		t.Fatal("bad -ks should error")
	}
}

func TestDumpAndLoadConfig(t *testing.T) {
	dumped := runCapture(t, "-dumpconfig", "-quick")
	if !strings.Contains(dumped, `"Nodes"`) || !strings.Contains(dumped, `"Ks"`) {
		t.Fatalf("dump missing fields:\n%s", dumped)
	}
	// Round-trip: feed the dump back as a config file and run a tiny sweep.
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(dumped), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCapture(t, "-config", path, "-experiment", "totalhops",
		"-networks", "1", "-tasks", "2", "-ks", "3", "-protocols", "GMP")
	if !strings.Contains(out, "Figure 11") {
		t.Fatalf("config-driven run broken:\n%s", out)
	}
	// Bad files error cleanly.
	var b strings.Builder
	if err := run([]string{"-config", "/nonexistent.json"}, &b); err == nil {
		t.Fatal("missing config should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}, &b); err == nil {
		t.Fatal("malformed config should error")
	}
}

func TestOutDirArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts")
	runCapture(t, "-experiment", "totalhops", "-quick",
		"-networks", "1", "-tasks", "2", "-ks", "4",
		"-protocols", "GMP", "-outdir", dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var json, csv bool
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			json = true
		}
		if strings.HasSuffix(e.Name(), ".csv") {
			csv = true
		}
	}
	if !json || !csv {
		t.Fatalf("artifacts missing: %v", entries)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Figure 11: total number of hops": "figure-11-total-number-of-hops",
		"  weird---title!!":               "weird-title",
		"λλλ":                             "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareExperimentCLI(t *testing.T) {
	out := runCapture(t, "-experiment", "compare", "-quick",
		"-networks", "1", "-tasks", "4", "-pair", "GMP,GRD", "-k", "4")
	if !strings.Contains(out, "GMP vs GRD") || !strings.Contains(out, "total hops:") {
		t.Fatalf("compare output:\n%s", out)
	}
	var b strings.Builder
	if err := run([]string{"-experiment", "compare", "-pair", "JUSTONE"}, &b); err == nil {
		t.Fatal("malformed -pair should error")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 3, 5 ,25")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[2] != 25 {
		t.Fatalf("parseInts = %v", got)
	}
}

func TestLossExperimentQuick(t *testing.T) {
	out := runCapture(t, "-experiment", "loss", "-quick")
	for _, want := range []string{
		"Figure 15 under loss", "loss rate", "GMP", "GMP+arq",
		"mean transmissions/task", "mean energy/task (J)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("loss output missing %q:\n%s", want, out)
		}
	}
}

func TestFaultFlagsOnMainExperiment(t *testing.T) {
	out := runCapture(t, "-experiment", "totalhops", "-quick",
		"-networks", "1", "-tasks", "2", "-ks", "4",
		"-protocols", "GMP", "-loss", "0.2", "-crash", "0.05", "-arq")
	if !strings.Contains(out, "Figure 11") {
		t.Fatalf("missing table:\n%s", out)
	}
}

func TestBadLossFlagRejected(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-experiment", "totalhops", "-quick",
		"-networks", "1", "-tasks", "2", "-ks", "4",
		"-protocols", "GMP", "-loss", "1.5"}, &b)
	if err == nil {
		t.Fatal("loss rate above 1 should error")
	}
}

func TestNegativeFaultFlagsRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-loss", "-0.1"}, {"-edgeloss", "-0.2"}, {"-crash", "-0.3"},
	} {
		var b strings.Builder
		full := append([]string{"-experiment", "totalhops", "-quick",
			"-networks", "1", "-tasks", "2", "-ks", "4", "-protocols", "GMP"}, args...)
		if err := run(full, &b); err == nil {
			t.Fatalf("%v should error", args)
		}
	}
}

func TestWorkersFlagDeterminism(t *testing.T) {
	base := []string{"-experiment", "totalhops", "-quick",
		"-networks", "2", "-tasks", "2", "-ks", "4", "-protocols", "GMP"}
	serial := runCapture(t, append([]string{"-workers", "1"}, base...)...)
	pooled := runCapture(t, append([]string{"-workers", "6"}, base...)...)
	if serial != pooled {
		t.Fatalf("-workers changed output:\n1 worker:\n%s\n6 workers:\n%s", serial, pooled)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-experiment", "totalhops", "-quick", "-workers", "-2",
		"-networks", "1", "-tasks", "2", "-ks", "4", "-protocols", "GMP"}, &b)
	if err == nil {
		t.Fatal("negative -workers should error")
	}
}

func TestProgressPrinter(t *testing.T) {
	var b strings.Builder
	p := progressPrinter(&b)
	p(1, 2)
	p(2, 2)
	if got := b.String(); got != "\r1/2 cells\r2/2 cells\n" {
		t.Fatalf("progress output %q", got)
	}
}

func TestChurnQuick(t *testing.T) {
	out := runCapture(t, "-experiment", "churn", "-quick", "-protocols", "GMP,LGS")
	for _, want := range []string{"E-X11", "joins spliced", "PASS (0 violations)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestScaleQuick(t *testing.T) {
	// Two shard counts through the CLI: both must pass the oracle, and the
	// deterministic columns (everything up to the timing fields) must agree.
	one := runCapture(t, "-experiment", "scale", "-quick", "-shards", "1")
	four := runCapture(t, "-experiment", "scale", "-quick", "-shards", "4")
	for _, out := range []string{one, four} {
		for _, want := range []string{"E-X10", "GMP+f", "hops/s", "PASS (0 violations)"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q:\n%s", want, out)
			}
		}
	}
	deterministic := func(out string) string {
		var s string
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) >= 11 && f[0] != "nodes" {
				s += strings.Join(f[:6], " ") + "\n" // nodes proto tiles deliv/dests tx energy
			}
		}
		return s
	}
	if d1, d4 := deterministic(one), deterministic(four); d1 != d4 {
		t.Fatalf("deterministic columns diverged:\n-shards 1:\n%s\n-shards 4:\n%s", d1, d4)
	}
}

func TestNegativeShardsRejected(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-experiment", "scale", "-quick", "-shards", "-3"}, &b)
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("err = %v, want shard-count validation error", err)
	}
}
