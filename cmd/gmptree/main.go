// Command gmptree builds and prints an rrSTR virtual Euclidean Steiner tree
// for a source and a set of destination coordinates, comparing it against
// the MST that the LGS baseline would use.
//
// Usage:
//
//	gmptree -source 0,0 -dests "900,480;900,520;400,700" [-rr 150] [-basic]
//
// Coordinates are "x,y" pairs; destinations are separated by semicolons.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gmp/internal/geom"
	"gmp/internal/steiner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmptree:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gmptree", flag.ContinueOnError)
	var (
		srcFlag  = fs.String("source", "0,0", "source coordinate x,y")
		destFlag = fs.String("dests", "", "destination coordinates x,y;x,y;…")
		rr       = fs.Float64("rr", 150, "radio range for the radio-aware heuristic")
		basic    = fs.Bool("basic", false, "disable radio-range awareness (GMPnr's builder)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *destFlag == "" {
		return fmt.Errorf("need -dests")
	}
	src, err := parsePoint(*srcFlag)
	if err != nil {
		return fmt.Errorf("-source: %w", err)
	}
	var dests []steiner.Dest
	for i, part := range strings.Split(*destFlag, ";") {
		p, err := parsePoint(part)
		if err != nil {
			return fmt.Errorf("-dests[%d]: %w", i, err)
		}
		dests = append(dests, steiner.Dest{Pos: p, Label: i})
	}

	opts := steiner.Options{RadioRange: *rr, RadioAware: !*basic}
	tree := steiner.Build(src, dests, opts)
	if err := tree.Validate(); err != nil {
		return err
	}
	mst := steiner.EuclideanMST(src, dests)

	fmt.Fprintf(out, "rrSTR tree (radio-aware=%v, rr=%g):\n%s", !*basic, *rr, tree)
	fmt.Fprintf(out, "total length: %.2f m over %d edges (%d virtual vertices)\n",
		tree.TotalLength(), tree.NumEdges(), countVirtuals(tree))
	fmt.Fprintf(out, "\nLGS-style MST over the same terminals:\n%s", mst)
	fmt.Fprintf(out, "total length: %.2f m\n", mst.TotalLength())
	if mstLen := mst.TotalLength(); mstLen > 0 {
		saving := (1 - tree.TotalLength()/mstLen) * 100
		fmt.Fprintf(out, "\nrrSTR saves %.1f%% tree length vs the MST\n", saving)
	}
	return nil
}

func countVirtuals(t *steiner.Tree) int {
	n := 0
	for _, v := range t.Vertices() {
		if v.Kind == steiner.Virtual {
			n++
		}
	}
	return n
}

func parsePoint(s string) (geom.Point, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return geom.Point{}, fmt.Errorf("want x,y; got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}
