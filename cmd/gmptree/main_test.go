package main

import (
	"strings"
	"testing"
)

func TestTreeOutput(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-source", "0,0", "-dests", "900,480;900,520;400,700"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rrSTR tree", "virtual", "terminal", "total length",
		"LGS-style MST", "saves",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBasicFlagDisablesRadioAwareness(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-basic", "-source", "0,0", "-dests", "100,10;100,-10"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "radio-aware=false") {
		t.Fatalf("basic mode not reported:\n%s", b.String())
	}
}

func TestMissingDests(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-source", "0,0"}, &b); err == nil {
		t.Fatal("missing -dests should error")
	}
}

func TestBadCoordinates(t *testing.T) {
	var b strings.Builder
	cases := [][]string{
		{"-source", "zzz", "-dests", "1,2"},
		{"-source", "1", "-dests", "1,2"},
		{"-source", "1,2", "-dests", "nope"},
		{"-source", "1,2", "-dests", "3,4;bad,5x"},
	}
	for _, args := range cases {
		if err := run(args, &b); err == nil {
			t.Fatalf("args %v should error", args)
		}
	}
}

func TestParsePoint(t *testing.T) {
	p, err := parsePoint(" 12.5 , -3 ")
	if err != nil {
		t.Fatal(err)
	}
	if p.X != 12.5 || p.Y != -3 {
		t.Fatalf("parsePoint = %v", p)
	}
}
