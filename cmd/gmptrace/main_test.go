package main

import (
	"strings"
	"testing"
)

func TestTraceAllProtocols(t *testing.T) {
	for _, proto := range []string{"GMP", "GMPnr", "LGS", "LGK", "PBM", "GRD", "SMT"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			var b strings.Builder
			err := run([]string{
				"-protocol", proto, "-nodes", "400", "-k", "3", "-seed", "9",
			}, &b)
			if err != nil {
				t.Fatal(err)
			}
			out := b.String()
			if !strings.Contains(out, "source ") || !strings.Contains(out, "transmissions:") {
				t.Fatalf("trace output incomplete:\n%s", out)
			}
		})
	}
}

func TestTraceShowsHops(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nodes", "400", "-k", "2", "-seed", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "#001") {
		t.Fatalf("no numbered transmissions:\n%s", out)
	}
	if !strings.Contains(out, "delivered ") {
		t.Fatalf("no delivery lines:\n%s", out)
	}
}

func TestTraceDOTAndJSONModes(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nodes", "300", "-k", "2", "-seed", "4", "-dot"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "digraph multicast") {
		t.Fatalf("dot output:\n%.80s", b.String())
	}
	b.Reset()
	if err := run([]string{"-nodes", "300", "-k", "2", "-seed", "4", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"transmissions"`) {
		t.Fatalf("json output:\n%.80s", b.String())
	}
}

func TestTraceUnknownProtocol(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "XXX"}, &b); err == nil {
		t.Fatal("unknown protocol should error")
	}
}
