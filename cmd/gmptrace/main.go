// Command gmptrace runs one multicast task on a random deployment and prints
// every transmission, so the hop-by-hop behavior of each protocol can be
// inspected (greedy grouping, splits, perimeter-mode detours).
//
// Usage:
//
//	gmptrace -protocol GMP -nodes 600 -k 5 -seed 42
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"gmp"
	"gmp/internal/trace"
	"gmp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gmptrace", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "GMP", "GMP|GMPnr|LGS|LGK|PBM|GRD|SMT")
		nodes     = fs.Int("nodes", 600, "deployed node count")
		k         = fs.Int("k", 5, "number of destinations")
		seed      = fs.Int64("seed", 1, "deployment and task seed")
		lambda    = fs.Float64("lambda", 0.3, "PBM trade-off parameter")
		maxHops   = fs.Int("maxhops", 100, "per-packet hop budget")
		dot       = fs.Bool("dot", false, "emit the forwarding structure as Graphviz DOT instead of text")
		jsonOut   = fs.Bool("json", false, "emit the route analysis as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rand.New(rand.NewSource(*seed))
	deployed := gmp.DeployUniform(*nodes, 1000, 1000, r)
	nw, err := gmp.NewNetwork(deployed, 1000, 1000, 150)
	if err != nil {
		return err
	}
	sys := gmp.NewSystem(nw, gmp.WithMaxHops(*maxHops))

	var proto gmp.Protocol
	switch strings.ToUpper(*protoName) {
	case "GMP":
		proto = sys.GMP()
	case "GMPNR":
		proto = sys.GMPnr()
	case "LGS":
		proto = sys.LGS()
	case "LGK":
		proto = sys.LGK(2)
	case "PBM":
		proto = sys.PBM(*lambda)
	case "GRD":
		proto = sys.GRD()
	case "SMT":
		proto = sys.SMT()
	default:
		return fmt.Errorf("unknown protocol %q", *protoName)
	}

	task, err := workload.Generate(r, *nodes, *k)
	if err != nil {
		return err
	}

	if !*dot && !*jsonOut {
		fmt.Fprintf(out, "protocol %s, %d nodes, seed %d\n", proto.Name(), *nodes, *seed)
		fmt.Fprintf(out, "source %d at %v\n", task.Source, nw.Pos(task.Source))
		for _, d := range task.Dests {
			fmt.Fprintf(out, "dest   %d at %v\n", d, nw.Pos(d))
		}
		fmt.Fprintln(out)
	}

	res, events := sys.Trace(proto, task.Source, task.Dests)
	if *dot || *jsonOut {
		a, err := trace.Analyze(nw, task.Source, events, res.Delivered)
		if err != nil {
			return err
		}
		if *dot {
			fmt.Fprint(out, a.DOT())
			return nil
		}
		data, err := a.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	for i, ev := range events {
		mode := "greedy"
		if ev.Perimeter {
			mode = "perimeter"
		}
		fmt.Fprintf(out, "#%03d t=%.4fms  %4d -> %-4d hops=%-3d %-9s dests=%v\n",
			i+1, ev.Time*1000, ev.From, ev.To, ev.Hops, mode, ev.Dests)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "transmissions: %d   energy: %.4f J   drops: %d\n",
		res.Transmissions, res.EnergyJ, res.Drops())
	delivered := make([]int, 0, len(res.Delivered))
	for d := range res.Delivered {
		delivered = append(delivered, d)
	}
	sort.Ints(delivered)
	for _, d := range delivered {
		fmt.Fprintf(out, "delivered %d after %d hops\n", d, res.Delivered[d])
	}
	if res.Failed() {
		fmt.Fprintf(out, "FAILED: %d of %d destinations unreached\n",
			res.DestCount-len(res.Delivered), res.DestCount)
	}
	return nil
}
