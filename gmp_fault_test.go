package gmp

import (
	"strings"
	"testing"
)

func TestFacadeFaultsTotalLoss(t *testing.T) {
	r := newTestSystem(t, 6, 600)
	nw := r.Network()
	sys := NewSystem(nw, WithFaults(FaultPlan{LossRate: 1}))
	res := sys.Multicast(sys.GMP(), 0, []int{100, 200})
	if !res.Failed() {
		t.Fatal("total loss delivered")
	}
	if res.LossDrops() == 0 {
		t.Fatalf("no loss drops recorded: %+v", res)
	}
}

func TestFacadeARQRecovers(t *testing.T) {
	base := newTestSystem(t, 7, 600)
	nw := base.Network()
	plan := FaultPlan{LossRate: 0.2, Seed: 9}

	plain := NewSystem(nw, WithFaults(plan))
	lossy := plain.Multicast(plain.GMP(), 0, []int{100, 200, 300})

	arq := NewSystem(nw, WithFaults(plan), WithARQ(DefaultARQ()))
	acked := arq.Multicast(arq.GMP(), 0, []int{100, 200, 300})

	if acked.Failed() {
		t.Fatalf("ARQ run failed: %+v", acked)
	}
	if acked.Retransmissions == 0 || acked.Acks == 0 {
		t.Fatalf("ARQ machinery idle: %+v", acked)
	}
	if acked.EnergyJ <= lossy.EnergyJ {
		t.Fatalf("ARQ energy %v not above plain %v", acked.EnergyJ, lossy.EnergyJ)
	}
}

func TestFacadeCrashedNodeSkipped(t *testing.T) {
	base := newTestSystem(t, 8, 600)
	nw := base.Network()
	// Crash one destination permanently; the task must fail on exactly the
	// crashed destination and still deliver the rest.
	sys := NewSystem(nw, WithFaults(FaultPlan{Crashes: []NodeCrash{{Node: 100, At: 0}}}))
	res := sys.Multicast(sys.GMP(), 0, []int{100, 200, 300})
	if _, ok := res.Delivered[100]; ok {
		t.Fatal("crashed destination delivered")
	}
	if _, ok := res.Delivered[200]; !ok {
		t.Fatalf("live destination lost: %+v", res.Delivered)
	}
}

func TestFacadeWithMaxHopsNegativePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("WithMaxHops(-1) must panic")
		}
		if !strings.Contains(r.(string), "negative hop budget") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	WithMaxHops(-1)
}

func TestFacadeWithFaultsInvalidPanics(t *testing.T) {
	sys := newTestSystem(t, 9, 300)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid fault plan must panic at NewSystem")
		}
	}()
	NewSystem(sys.Network(), WithFaults(FaultPlan{LossRate: 2}))
}

func TestFacadeWithARQInvalidPanics(t *testing.T) {
	sys := newTestSystem(t, 10, 300)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid ARQ config must panic at NewSystem")
		}
	}()
	NewSystem(sys.Network(), WithARQ(ARQConfig{Enabled: true, MaxRetries: -1}))
}

func TestFacadeZeroFaultPlanUnchanged(t *testing.T) {
	base := newTestSystem(t, 11, 600)
	ref := base.Multicast(base.GMP(), 0, []int{50, 150, 250})

	sys := NewSystem(base.Network(), WithFaults(FaultPlan{}), WithARQ(ARQConfig{}))
	got := sys.Multicast(sys.GMP(), 0, []int{50, 150, 250})
	if got.Transmissions != ref.Transmissions || got.EnergyJ != ref.EnergyJ ||
		len(got.Delivered) != len(ref.Delivered) {
		t.Fatalf("zero plan changed results:\n ref %+v\n got %+v", ref, got)
	}
}
