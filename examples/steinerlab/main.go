// Steinerlab: a pure-geometry tour of the library's tree builders — the
// paper's rrSTR (basic and radio-aware) against the Euclidean MST, the
// corner-Steinerized MST, and the near-optimal 4-terminal reference.
// Useful for building intuition about why GMP routes the way it does.
package main

import (
	"fmt"
	"math/rand"

	"gmp"
	"gmp/internal/geom"
	"gmp/internal/steiner"
)

func main() {
	// The paper's Figure 1/4 shape: a far cluster {u, v}, a mid destination
	// d, and a near-chain destination c.
	src := gmp.Pt(100, 100)
	figure := []steiner.Dest{
		{Pos: gmp.Pt(820, 620), Label: 0}, // u
		{Pos: gmp.Pt(870, 560), Label: 1}, // v
		{Pos: gmp.Pt(760, 420), Label: 2}, // d
		{Pos: gmp.Pt(420, 300), Label: 3}, // c
	}
	fmt.Println("Paper-style instance (source + 4 destinations):")
	compare(src, figure)

	// Random scatter at the evaluation's k=12.
	r := rand.New(rand.NewSource(4))
	var scatter []steiner.Dest
	for i := 0; i < 12; i++ {
		scatter = append(scatter, steiner.Dest{
			Pos:   gmp.Pt(r.Float64()*1000, r.Float64()*1000),
			Label: i,
		})
	}
	fmt.Println("\nUniform scatter, k=12:")
	compare(gmp.Pt(500, 500), scatter)

	// The 4-terminal case has a near-optimal reference to calibrate against.
	small := figure[:3]
	pts := []geom.Point{src}
	for _, d := range small {
		pts = append(pts, d.Pos)
	}
	fmt.Printf("\n4-terminal reference length: %.1f m (rrSTR %.1f, MST %.1f)\n",
		steiner.ReferenceLength(pts),
		steiner.Build(src, small, steiner.Options{}).TotalLength(),
		steiner.EuclideanMST(src, small).TotalLength())

	// Print the radio-aware rrSTR tree for the paper-style instance.
	tree := steiner.Build(src, figure, steiner.Options{RadioRange: 150, RadioAware: true})
	fmt.Printf("\nradio-aware rrSTR tree:\n%s", tree)
}

func compare(src gmp.Point, dests []steiner.Dest) {
	basic := steiner.Build(src, dests, steiner.Options{})
	aware := steiner.Build(src, dests, steiner.Options{RadioRange: 150, RadioAware: true})
	mst := steiner.EuclideanMST(src, dests)
	smst := steiner.SteinerizedMST(src, dests)
	fmt.Printf("  rrSTR (basic):      %7.1f m, %d pivots\n", basic.TotalLength(), len(basic.Pivots()))
	fmt.Printf("  rrSTR (radio-aware):%7.1f m, %d pivots\n", aware.TotalLength(), len(aware.Pivots()))
	fmt.Printf("  Euclidean MST:      %7.1f m, %d pivots\n", mst.TotalLength(), len(mst.Pivots()))
	fmt.Printf("  Steinerized MST:    %7.1f m, %d pivots\n", smst.TotalLength(), len(smst.Pivots()))
}
