// Voids: deploy a field with a large coverage hole and show how GMP's
// perimeter mode routes around it while LGS — which has no recovery — fails.
// Mirrors the paper's §4.1 and the Figure 15 failure experiment.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gmp"
	"gmp/internal/network"
)

func main() {
	// A 1 km field with a C-shaped obstacle around the center, open to the
	// west: a concave pocket that traps greedy forwarding (a circular hole
	// would not — greedy can skirt convex obstacles).
	r := rand.New(rand.NewSource(11))
	center := gmp.Pt(500, 500)
	trap := network.CShapedObstacle(center, 180, 360)
	nodes := network.DeployUniformExclude(900, 1000, 1000, trap, r)
	nw, err := gmp.NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		log.Fatal(err)
	}
	sys := gmp.NewSystem(nw)

	// Route from inside the pocket to destinations beyond the eastern wall:
	// greedy forwarding dead-ends against the inside of the C.
	src := nw.ClosestNode(center)
	dests := []int{
		nw.ClosestNode(gmp.Pt(940, 560)),
		nw.ClosestNode(gmp.Pt(940, 440)),
	}
	fmt.Printf("source %d at %v\n", src, nw.Pos(src))
	for _, d := range dests {
		fmt.Printf("dest   %d at %v (behind the void)\n", d, nw.Pos(d))
	}

	fmt.Println("\n--- GMP (perimeter recovery) ---")
	res, events := sys.Trace(sys.GMP(), src, dests)
	perimeterHops := 0
	for _, ev := range events {
		if ev.Perimeter {
			perimeterHops++
		}
	}
	fmt.Printf("delivered %d/%d, %d transmissions (%d in perimeter mode)\n",
		len(res.Delivered), res.DestCount, res.Transmissions, perimeterHops)
	if res.Failed() {
		fmt.Println("unexpected failure — try another seed")
	}

	fmt.Println("\n--- LGS (no recovery) ---")
	resLGS := sys.Multicast(sys.LGS(), src, dests)
	fmt.Printf("delivered %d/%d, %d transmissions, %d drops\n",
		len(resLGS.Delivered), resLGS.DestCount, resLGS.Transmissions, resLGS.Drops())
	if resLGS.Failed() {
		fmt.Println("LGS failed at the void, as §5.4 predicts")
	}
}
