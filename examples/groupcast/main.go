// Groupcast: dynamic multicast groups on top of GMP. Sensor nodes join and
// leave a named group through the GHT-style rendezvous service; publishers
// resolve the member list and multicast with GMP. The example also fires a
// geocast to a geographic zone — the other group-communication primitive
// the paper's introduction discusses.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gmp"
)

func main() {
	r := rand.New(rand.NewSource(2026))
	nodes := gmp.DeployUniform(900, 1000, 1000, r)
	nw, err := gmp.NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		log.Fatal(err)
	}
	sys := gmp.NewSystem(nw)
	svc := sys.Groups()

	const group = "alerts/perimeter-breach"
	fmt.Printf("group %q homes at node %d (hash point %v)\n",
		group, svc.Home(group), svc.HashPoint(group))

	// Subscribers scattered across the field join the group.
	subscribers := []int{42, 137, 420, 611, 808}
	for _, m := range subscribers {
		if err := svc.Join(m, group); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d joins cost %d control messages\n",
		len(subscribers), svc.Metrics().Messages)

	// A detector node publishes to the group: resolve members, multicast.
	const detector = 700
	res, err := sys.MulticastGroup(svc, sys.GMP(), detector, group)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("publish: %d transmissions, %.4f J, all %d members reached: %v\n",
		res.TotalHops(), res.EnergyJ, res.DestCount, !res.Failed())

	// One subscriber churns out; version bumps; next publish reaches four.
	if err := svc.Leave(137, group); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("membership version now %d\n", svc.Version(group))
	res, err = sys.MulticastGroup(svc, sys.GMP(), detector, group)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-publish reaches %d members with %d transmissions\n",
		res.DestCount, res.TotalHops())

	// Geocast to the south-west zone: every node within 120 m of the point.
	zone := gmp.Pt(200, 200)
	zoneDests := sys.GeocastDests(zone, 120)
	gres := sys.Multicast(sys.Geocast(zone, 120), detector, zoneDests)
	fmt.Printf("geocast to %d zone nodes: %d transmissions, delivered %v\n",
		len(zoneDests), gres.TotalHops(), !gres.Failed())

	// Or geocast to the area the group's members occupy: convex hull of
	// their positions grown by one radio range.
	members, err := svc.Members(detector, group)
	if err != nil {
		log.Fatal(err)
	}
	memberPts := make([]gmp.Point, len(members))
	for i, m := range members {
		memberPts[i] = nw.Pos(m)
	}
	area := gmp.HullRegion(memberPts, nw.Range())
	areaDests := sys.GeocastRegionDests(area)
	ares := sys.Multicast(sys.GeocastRegion(area), detector, areaDests)
	fmt.Printf("geocast to the group's hull area (%d nodes): %d transmissions, delivered %v\n",
		len(areaDests), ares.TotalHops(), !ares.Failed())
}
