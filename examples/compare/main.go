// Compare: run every protocol on the same batch of multicast tasks and print
// a side-by-side comparison — a miniature of the paper's Figures 11/12/14.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gmp"
	"gmp/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(7))
	nodes := gmp.DeployUniform(1000, 1000, 1000, r)
	nw, err := gmp.NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		log.Fatal(err)
	}
	sys := gmp.NewSystem(nw)

	protocols := []gmp.Protocol{
		sys.PBM(0.3), sys.LGS(), sys.GMP(), sys.GMPnr(), sys.SMT(), sys.GRD(),
	}

	const taskCount, k = 25, 10
	tasks, err := workload.GenerateBatch(r, nw.Len(), k, taskCount)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d tasks, %d destinations each, %d nodes\n\n", taskCount, k, nw.Len())
	fmt.Printf("%-12s %12s %12s %12s %8s\n",
		"protocol", "total hops", "hops/dest", "energy (J)", "failed")
	for _, p := range protocols {
		var hops, perDest, energy float64
		failed := 0
		for _, task := range tasks {
			res := sys.Multicast(p, task.Source, task.Dests)
			hops += float64(res.TotalHops())
			perDest += res.AvgHopsPerDest()
			energy += res.EnergyJ
			if res.Failed() {
				failed++
			}
		}
		n := float64(taskCount)
		fmt.Printf("%-12s %12.1f %12.2f %12.4f %7d\n",
			p.Name(), hops/n, perDest/n, energy/n, failed)
	}
	fmt.Println("\nExpected shape (paper §5): GMP lowest total hops and energy;")
	fmt.Println("GMP ≈ PBM ≈ SMT ≈ GRD on hops/dest; LGS clearly worse there.")
}
