// Deployment: a capstone scenario exercising the whole library together —
// a monitoring deployment where sensors maintain a HELLO control plane,
// subscribers hold leased group memberships, detectors publish alarms over
// GMP, and the operator budgets batteries against control- and data-plane
// energy, renders routes, and probes failure resilience.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gmp"
	"gmp/internal/beacon"
	"gmp/internal/groups"
	"gmp/internal/planar"
	"gmp/internal/workload"
)

func main() {
	const (
		nodes      = 800
		batteryJ   = 40.0 // per node
		alarmGroup = "ops/alarms"
		leaseSec   = 3600.0
		reportsDay = 96 // one multicast per 15 min
	)

	r := rand.New(rand.NewSource(20260704))
	deployed := gmp.DeployUniform(nodes, 1000, 1000, r)
	nw, err := gmp.NewNetwork(deployed, 1000, 1000, 150)
	if err != nil {
		log.Fatal(err)
	}
	sys := gmp.NewSystem(nw)
	sys.SetDynamicFrames(true) // charge real frame sizes

	// Control plane: HELLO beacons every 2 s. How much battery does the
	// control plane alone burn per day?
	bcfg := beacon.DefaultConfig()
	bcfg.PeriodSec = 2
	beaconJPerDay := beacon.EnergyPerNodePerHour(bcfg, gmp.DefaultRadioParams(), nw.AvgDegree()) * 24
	fmt.Printf("control plane: %.1f J per node-day at %.0fs beacons (battery %.0f J)\n",
		beaconJPerDay, bcfg.PeriodSec, batteryJ)

	// Subscribers join with one-hour leases and must refresh before expiry.
	pg := planar.Planarize(nw, planar.Gabriel)
	svc := groups.New(nw, pg, groups.WithLease(leaseSec))
	subscribers := []int{17, 203, 388, 542, 761}
	for _, m := range subscribers {
		if err := svc.JoinAt(m, alarmGroup, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d subscribers joined %q (home node %d), %d control messages\n",
		len(subscribers), alarmGroup, svc.Home(alarmGroup), svc.Metrics().Messages)

	// A day of operation: detectors fire periodically; leases refresh
	// hourly; data-plane energy accumulates under the §5.3 model.
	var dataJ float64
	delivered, total := 0, 0
	for tick := 0; tick < reportsDay; tick++ {
		now := float64(tick) * (86400.0 / reportsDay)
		if tick%4 == 0 { // hourly lease refresh
			for _, m := range subscribers {
				_ = svc.JoinAt(m, alarmGroup, now)
			}
		}
		members, err := svc.MembersAt(0, alarmGroup, now)
		if err != nil {
			fmt.Printf("t=%5.0fs: no live members (%v)\n", now, err)
			continue
		}
		detector, err := workload.Generate(r, nodes, 1)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Multicast(sys.GMP(), detector.Source, members)
		dataJ += res.EnergyJ
		delivered += len(res.Delivered)
		total += res.DestCount
	}

	fmt.Printf("\nafter one day: %d/%d alarm deliveries, %.1f J total data-plane energy\n",
		delivered, total, dataJ)
	fmt.Printf("control vs data: %.1f J/node-day of beacons vs %.3f J/node-day of alarms —\n",
		beaconJPerDay, dataJ/nodes)
	fmt.Printf("at this duty cycle the HELLO protocol, not multicasting, sets battery life:\n")
	fmt.Printf("a %.0f J battery lasts %.1f days (slow the beacons or sleep-schedule to extend)\n",
		batteryJ, batteryJ/(beaconJPerDay+dataJ/nodes))

	// Operator tooling: trace and render the last alarm.
	members, _ := svc.MembersAt(0, alarmGroup, 86400-1)
	_, events := sys.Trace(sys.GMP(), 42, members)
	svg := sys.RenderSVG(events, 42, members)
	fmt.Printf("\nrendered the final alarm as %d bytes of SVG (sys.RenderSVG)\n", len(svg))

	// What if a vandal takes out 15% of the field?
	failed := r.Perm(nodes)[:nodes*15/100]
	degraded := nw.WithFailures(failed)
	dsys := gmp.NewSystem(degraded)
	res := dsys.Multicast(dsys.GMP(), 42, aliveSubset(degraded, members))
	fmt.Printf("after 15%% random failures: alarm still reaches %d/%d subscribers\n",
		len(res.Delivered), res.DestCount)
}

// aliveSubset filters dead destinations out.
func aliveSubset(nw *gmp.Network, ids []int) []int {
	var out []int
	for _, id := range ids {
		if nw.Alive(id) {
			out = append(out, id)
		}
	}
	return out
}
