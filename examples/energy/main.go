// Energy: estimate how multicast protocol choice changes the energy budget
// of a periodic-reporting sensor application — the paper's intro motivation
// that "multicasting preserves network resources by reducing redundant
// messaging", quantified with the Table 1 energy model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gmp"
	"gmp/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(99))
	nodes := gmp.DeployUniform(1000, 1000, 1000, r)
	nw, err := gmp.NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		log.Fatal(err)
	}
	sys := gmp.NewSystem(nw)

	// Scenario: a monitoring application multicasts one 128 B reading per
	// minute from a random reporter to k subscribed sink nodes. How much
	// energy does each protocol burn per day, across group sizes?
	const tasksPerK = 20
	const reportsPerDay = 24 * 60

	fmt.Printf("%-6s %14s %14s %14s %12s\n", "k", "GMP (J/day)", "PBM (J/day)", "GRD (J/day)", "GMP saving")
	for _, k := range []int{3, 6, 12, 24} {
		tasks, err := workload.GenerateBatch(r, nw.Len(), k, tasksPerK)
		if err != nil {
			log.Fatal(err)
		}
		var eGMP, ePBM, eGRD float64
		for _, task := range tasks {
			eGMP += sys.Multicast(sys.GMP(), task.Source, task.Dests).EnergyJ
			ePBM += sys.Multicast(sys.PBM(0.3), task.Source, task.Dests).EnergyJ
			eGRD += sys.Multicast(sys.GRD(), task.Source, task.Dests).EnergyJ
		}
		perDay := func(total float64) float64 {
			return total / tasksPerK * reportsPerDay
		}
		saving := (1 - eGMP/ePBM) * 100
		fmt.Printf("%-6d %14.1f %14.1f %14.1f %11.1f%%\n",
			k, perDay(eGMP), perDay(ePBM), perDay(eGRD), saving)
	}
	fmt.Println("\nGMP's savings grow with group size: shared subpaths amortize")
	fmt.Println("transmissions that per-destination unicast (GRD) pays repeatedly.")
}
