// Quickstart: deploy a sensor field, multicast one message with GMP, and
// inspect the resulting tree and metrics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gmp"
)

func main() {
	// 1. Deploy 1000 sensors uniformly in a 1 km x 1 km field (Table 1).
	r := rand.New(rand.NewSource(42))
	nodes := gmp.DeployUniform(1000, 1000, 1000, r)
	nw, err := gmp.NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes, average degree %.1f\n", nw.Len(), nw.AvgDegree())

	// 2. Build a system (planarizes the network and prepares the simulator).
	sys := gmp.NewSystem(nw)

	// 3. Multicast from node 0 to five destinations.
	dests := []int{123, 321, 555, 777, 901}
	res := sys.Multicast(sys.GMP(), 0, dests)

	fmt.Printf("total transmissions: %d\n", res.TotalHops())
	fmt.Printf("mean hops per destination: %.2f\n", res.AvgHopsPerDest())
	fmt.Printf("energy: %.4f J\n", res.EnergyJ)
	for _, d := range dests {
		fmt.Printf("  dest %d reached after %d hops\n", d, res.Delivered[d])
	}

	// 4. Peek at the virtual Euclidean Steiner tree the source would build:
	// this is the structure GMP uses to split destinations into groups.
	destPts := make([]gmp.Point, len(dests))
	for i, d := range dests {
		destPts[i] = nw.Pos(d)
	}
	tree := gmp.BuildSteinerTree(nw.Pos(0), destPts, gmp.SteinerOptions{
		RadioRange: nw.Range(),
		RadioAware: true,
	})
	fmt.Printf("\nsource's rrSTR tree:\n%s", tree)
}
