package gmp

// Allocation-budget regression tests for the forwarding hot path, the
// top-level companion to the per-package budgets in internal/routing and
// internal/steiner. See DESIGN.md §"Hot-path memory discipline" for the
// ownership rules the budgets enforce.

import (
	"testing"

	"gmp/internal/testutil"
)

// TestEngineHopAllocBudget pins the steady-state allocation budget of one
// full engine hop: a 12-destination multicast under a one-hop budget runs
// the source's GMP decision plus the engine's clone / schedule / deliver /
// kill machinery. Packet pooling keeps the engine's share to the clones it
// must hand to handlers; the budget is well under the PR 3 baseline of 478
// allocs/op while leaving headroom over the measured steady state (~46).
func TestEngineHopAllocBudget(t *testing.T) {
	testutil.SkipIfRace(t)
	nodes := DeployUniform(1000, 1000, 1000, newBenchRand())
	nw, err := NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(nw, WithMaxHops(1))
	proto := sys.GMP()
	dests := []int{100, 250, 400, 550, 700, 850, 950, 50, 300, 600, 750, 900}
	avg := testing.AllocsPerRun(200, func() {
		sys.Multicast(proto, 0, dests)
	})
	const budget = 120
	if avg > budget {
		t.Errorf("engine hop: %.1f allocs/op, budget %d", avg, budget)
	}
}
