// Package gmp is a Go implementation of GMP — the distributed, stateless
// Geographic Multicast routing Protocol for wireless sensor networks of
// Wu & Candan (ICDCS 2006) — together with everything needed to evaluate it:
// the rrSTR reduction-ratio Euclidean Steiner tree heuristic, a sensor
// network model, Gabriel/RNG planarization with perimeter routing, a
// discrete-event simulator with the paper's radio/energy model, the baseline
// protocols (LGS, LGK, PBM, GRD, SMT), and an experiment harness that
// regenerates every figure of the paper's evaluation.
//
// # Quick start
//
//	r := rand.New(rand.NewSource(1))
//	nodes := gmp.DeployUniform(1000, 1000, 1000, r)
//	nw, err := gmp.NewNetwork(nodes, 1000, 1000, 150)
//	if err != nil { ... }
//	sys := gmp.NewSystem(nw)
//	res := sys.Multicast(sys.GMP(), 0, []int{17, 42, 99})
//	fmt.Println(res.TotalHops(), res.EnergyJ)
//
// # Architecture
//
// The facade re-exports the library's subsystems; see the package
// documentation of the internal packages for detail:
//
//   - internal/geom     — plane geometry, Fermat points, regions, hulls
//   - internal/steiner  — reduction ratio, rrSTR, MST variants, KMB
//   - internal/network  — deployment, unit-disk connectivity, spatial index,
//     failure and position-noise views
//   - internal/planar   — Gabriel/RNG planarization, face routing
//   - internal/sim      — discrete-event kernel, radio/energy model,
//     concurrent sessions with latency accounting
//   - internal/routing  — GMP, GMPnr, LGS, LGK, PBM, GRD, SMT, geocast
//   - internal/workload — uniform and clustered task generation
//   - internal/mobility — random-waypoint movement
//   - internal/beacon   — HELLO neighbor discovery costs and accuracy
//   - internal/groups   — GHT-style membership with soft-state leases
//   - internal/wire     — on-air frame format under the 128 B budget
//   - internal/trace    — forwarding-tree reconstruction and stretch
//   - internal/viz      — SVG rendering of networks, trees, traces, charts
//   - internal/report   — self-contained HTML reports
//   - internal/stats    — tables, JSON, paired confidence intervals
//   - internal/experiment — figure-by-figure reproduction harness and the
//     E-X1…E-X7 extension experiments
package gmp
