package gmp

// One benchmark per table/figure of the paper's evaluation (§5), plus the
// ablations called out in DESIGN.md §4. Each benchmark regenerates its
// figure's series at a reduced-but-representative scale and reports the
// headline numbers via b.ReportMetric, so `go test -bench=.` doubles as a
// smoke reproduction. The full-scale campaign lives behind `gmpsim`.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gmp/internal/experiment"
	"gmp/internal/planar"
	"gmp/internal/stats"
)

// newBenchRand gives every benchmark the same deployment stream.
func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// benchConfig is the reduced campaign used by the figure benchmarks: one
// deployment, a trimmed k sweep, Table 1 physics.
func benchConfig() experiment.Config {
	cfg := experiment.Default()
	cfg.Nodes = 600
	cfg.Networks = 1
	cfg.TasksPerNet = 20
	cfg.Ks = []int{5, 15, 25}
	cfg.Lambdas = []float64{0, 0.3, 0.6}
	cfg.Seed = 1
	return cfg
}

// reportSeries publishes the largest-k value of each protocol series.
func reportSeries(b *testing.B, tbl *stats.Table, unit string) {
	b.Helper()
	last := len(tbl.Xs) - 1
	for _, s := range tbl.Series {
		b.ReportMetric(s.Y[last], s.Label+"-"+unit)
	}
}

// BenchmarkTable1Setup measures the fixed cost of standing up one Table 1
// deployment: uniform placement, adjacency, planarization.
func BenchmarkTable1Setup(b *testing.B) {
	b.ReportAllocs()
	cfg := experiment.Default()
	cfg.Ks = []int{3}
	cfg.Networks = 1
	cfg.TasksPerNet = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunMain(cfg, []string{experiment.ProtoGRD}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11TotalHops regenerates Figure 11 (total number of hops vs k).
func BenchmarkFig11TotalHops(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	protos := experiment.AllProtocols()
	var res *experiment.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunMain(cfg, protos)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res.TotalHops, "hops")
}

// BenchmarkFig12PerDestHops regenerates Figure 12 (per-destination hop count
// vs k).
func BenchmarkFig12PerDestHops(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	protos := experiment.AllProtocols()
	var res *experiment.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunMain(cfg, protos)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res.PerDestHops, "hops/dest")
}

// BenchmarkFig14Energy regenerates Figure 14 (total energy cost vs k).
func BenchmarkFig14Energy(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	protos := experiment.AllProtocols()
	var res *experiment.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunMain(cfg, protos)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res.Energy, "J")
}

// BenchmarkFig15Failures regenerates Figure 15 (failed tasks vs density).
func BenchmarkFig15Failures(b *testing.B) {
	b.ReportAllocs()
	fc := experiment.DefaultFailureConfig()
	fc.Base.Networks = 1
	fc.Base.TasksPerNet = 20
	fc.NodeCounts = []int{400, 700, 1000}
	fc.K = 12
	protos := []string{experiment.ProtoPBM, experiment.ProtoLGS, experiment.ProtoGMP}
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiment.RunFailures(fc, protos)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report failures at the sparsest density (the regime the figure is
	// about).
	for _, s := range tbl.Series {
		b.ReportMetric(s.Y[0], s.Label+"-failed")
	}
}

// BenchmarkAblationRadioAware isolates the §3.3 radio-range awareness (GMP
// vs GMPnr), the gap Figure 11 attributes to redundant-hop suppression.
func BenchmarkAblationRadioAware(b *testing.B) {
	cfg := benchConfig()
	protos := []string{experiment.ProtoGMP, experiment.ProtoGMPnr}
	var res *experiment.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunMain(cfg, protos)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res.TotalHops, "hops")
}

// BenchmarkAblationPlanarizer compares Gabriel vs RNG planarization under
// the failure experiment (perimeter routing is the only consumer of the
// planar graph).
func BenchmarkAblationPlanarizer(b *testing.B) {
	for _, kind := range []planar.Kind{planar.Gabriel, planar.RelativeNeighborhood} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			fc := experiment.DefaultFailureConfig()
			fc.Base.Networks = 1
			fc.Base.TasksPerNet = 20
			fc.Base.Planarizer = kind
			fc.NodeCounts = []int{500}
			var tbl *stats.Table
			for i := 0; i < b.N; i++ {
				var err error
				tbl, err = experiment.RunFailures(fc, []string{experiment.ProtoGMP})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tbl.Series[0].Y[0], "failed")
		})
	}
}

// BenchmarkAblationTreeConstruction isolates the paper's central claim by
// swapping GMP's rrSTR tree for a Euclidean MST and for a corner-Steinerized
// MST while keeping everything else (A-4/A-6): rrSTR buys much lower
// per-destination hops at slightly higher total hops.
func BenchmarkAblationTreeConstruction(b *testing.B) {
	cfg := benchConfig()
	protos := []string{experiment.ProtoGMP, experiment.ProtoGMPmst, experiment.ProtoGMPsmst}
	var res *experiment.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunMain(cfg, protos)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res.TotalHops, "hops")
	reportSeries(b, res.PerDestHops, "hops/dest")
}

// BenchmarkAblationPBMLambda regenerates the §5.1 λ trade-off sweep.
func BenchmarkAblationPBMLambda(b *testing.B) {
	cfg := benchConfig()
	cfg.Lambdas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiment.LambdaSweep(cfg, 15)
		if err != nil {
			b.Fatal(err)
		}
	}
	total := tbl.Get("total hops")
	b.ReportMetric(total.Y[0], "hops@λ=0")
	b.ReportMetric(total.Y[len(total.Y)-1], "hops@λ=0.6")
}

// BenchmarkExtRobustness regenerates the E-X1 node-failure extension at
// reduced scale.
func BenchmarkExtRobustness(b *testing.B) {
	rc := experiment.QuickRobustnessConfig()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiment.RunRobustness(rc, []string{experiment.ProtoGMP, experiment.ProtoLGS})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tbl.Xs) - 1
	for _, s := range tbl.Series {
		b.ReportMetric(s.Y[last], s.Label+"-delivery")
	}
}

// BenchmarkExtLocalization regenerates the E-X2 GPS-error extension at
// reduced scale.
func BenchmarkExtLocalization(b *testing.B) {
	lc := experiment.QuickLocalizationConfig()
	var res *experiment.LocalizationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunLocalization(lc, []string{experiment.ProtoGMP, experiment.ProtoGRD})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(res.Delivery.Xs) - 1
	for _, s := range res.Delivery.Series {
		b.ReportMetric(s.Y[last], s.Label+"-delivery")
	}
}

// BenchmarkExtStaleness regenerates the E-X3 location-staleness extension
// at reduced scale.
func BenchmarkExtStaleness(b *testing.B) {
	sc := experiment.QuickStalenessConfig()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiment.RunStaleness(sc, []string{experiment.ProtoGMP, experiment.ProtoGRD})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tbl.Xs) - 1
	for _, s := range tbl.Series {
		b.ReportMetric(s.Y[last], s.Label+"-delivery")
	}
}

// BenchmarkExtLifetime regenerates the E-X4 network-lifetime extension at
// reduced scale.
func BenchmarkExtLifetime(b *testing.B) {
	lt := experiment.QuickLifetimeConfig()
	lt.Base.Networks = 1
	var res *experiment.LifetimeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunLifetime(lt, []string{experiment.ProtoGMP, experiment.ProtoGRD})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(res.FirstDeath.Xs) - 1
	for _, s := range res.FirstDeath.Series {
		b.ReportMetric(s.Y[last], s.Label+"-tasks")
	}
}

// BenchmarkExtLoad regenerates the E-X5 concurrent-load latency extension
// at reduced scale.
func BenchmarkExtLoad(b *testing.B) {
	ld := experiment.QuickLoadConfig()
	ld.Base.Networks = 1
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiment.RunLoad(ld, []string{experiment.ProtoGMP, experiment.ProtoGRD})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tbl.Xs) - 1
	for _, s := range tbl.Series {
		// Metric units must not contain whitespace ("GMP p95" → "GMP-p95").
		b.ReportMetric(s.Y[last], strings.ReplaceAll(s.Label, " ", "-")+"-ms")
	}
}

// BenchmarkAblationFrameSizing quantifies what the paper's flat 128 B
// message size hides: energy with real wire-format frame sizes (A-5).
func BenchmarkAblationFrameSizing(b *testing.B) {
	sys := benchSystem(b)
	dests := []int{100, 250, 400, 550, 700, 850, 950, 50, 300, 600, 750, 900}
	proto := sys.GMP()
	var fixedJ, dynJ float64
	for i := 0; i < b.N; i++ {
		sys.SetDynamicFrames(false)
		fixedJ = sys.Multicast(proto, 0, dests).EnergyJ
		sys.SetDynamicFrames(true)
		dynJ = sys.Multicast(proto, 0, dests).EnergyJ
		sys.SetDynamicFrames(false)
	}
	b.ReportMetric(fixedJ, "fixed-J")
	b.ReportMetric(dynJ, "dynamic-J")
	if fixedJ > 0 {
		b.ReportMetric((dynJ/fixedJ-1)*100, "overhead-%")
	}
}

// BenchmarkExtBeaconing regenerates the E-X6 neighbor-discovery extension
// at reduced scale.
func BenchmarkExtBeaconing(b *testing.B) {
	bc := experiment.QuickBeaconConfig()
	bc.Base.Networks = 1
	var res *experiment.BeaconResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunBeaconing(bc)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(res.PosError.Xs) - 1
	b.ReportMetric(res.PosError.Series[0].Y[last], "posErr-m")
	b.ReportMetric(res.EnergyPerHour.Series[0].Y[0], "fastBeacon-J/h")
}

// BenchmarkExtClustering regenerates the E-X7 destination-clustering
// extension at reduced scale.
func BenchmarkExtClustering(b *testing.B) {
	cc := experiment.QuickClusteringConfig()
	cc.Base.Networks = 1
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiment.RunClustering(cc, []string{experiment.ProtoGMP, experiment.ProtoGRD})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range tbl.Series {
		b.ReportMetric(s.Y[0], s.Label+"-tight-hops")
	}
}

// BenchmarkMulticastTask measures the end-to-end cost of a single GMP
// multicast on a Table 1 scale network — the per-packet figure a deployment
// would care about.
func BenchmarkMulticastTask(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem(b)
	dests := []int{100, 250, 400, 550, 700, 850, 950, 50, 300, 600, 750, 900}
	proto := sys.GMP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sys.Multicast(proto, 0, dests)
		if res.InvalidSends != 0 {
			b.Fatal("invalid sends")
		}
	}
}

func benchSystem(b *testing.B) *System {
	b.Helper()
	nodes := DeployUniform(1000, 1000, 1000, newBenchRand())
	nw, err := NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		b.Fatal(err)
	}
	return NewSystem(nw)
}

// BenchmarkSingleRRSTRBuild isolates one rrSTR tree construction (the §3
// algorithm itself, no simulation): source plus 12 destinations with the
// full radio-aware heuristic, the hot inner call of every GMP forwarding
// step. It measures the steady state GMP actually runs in — a per-node
// SteinerBuilder reused across decisions — so allocs/op reflects the arena's
// residual garbage, not first-build warm-up.
func BenchmarkSingleRRSTRBuild(b *testing.B) {
	b.ReportAllocs()
	nodes := DeployUniform(1000, 1000, 1000, newBenchRand())
	nw, err := NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		b.Fatal(err)
	}
	destIDs := []int{100, 250, 400, 550, 700, 850, 950, 50, 300, 600, 750, 900}
	dests := make([]SteinerDest, len(destIDs))
	for i, d := range destIDs {
		dests[i] = SteinerDest{Pos: nw.Pos(d), Label: i}
	}
	opts := SteinerOptions{RadioRange: nw.Range(), RadioAware: true}
	var builder SteinerBuilder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tree := builder.Build(nw.Pos(0), dests, opts); tree == nil {
			b.Fatal("nil tree")
		}
	}
}

// BenchmarkSingleGMPHop measures one GMP forwarding decision: a multicast
// with a one-hop budget performs exactly the source's group-split and
// next-hop selection, then stops.
func BenchmarkSingleGMPHop(b *testing.B) {
	b.ReportAllocs()
	nodes := DeployUniform(1000, 1000, 1000, newBenchRand())
	nw, err := NewNetwork(nodes, 1000, 1000, 150)
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(nw, WithMaxHops(1))
	proto := sys.GMP()
	dests := []int{100, 250, 400, 550, 700, 850, 950, 50, 300, 600, 750, 900}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Multicast(proto, 0, dests)
	}
}

// BenchmarkFailureSweepWorkers runs a reduced Figure 15 sweep at several
// worker-pool sizes — the campaign runner's headline scaling measurement.
// On multi-core hardware wall-clock drops as workers grow; output is
// byte-identical at every size (see TestWorkersDeterminism).
func BenchmarkFailureSweepWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			fc := experiment.DefaultFailureConfig()
			fc.Base.Networks = 2
			fc.Base.TasksPerNet = 10
			fc.Base.Workers = w
			fc.NodeCounts = []int{300, 500, 700, 900}
			fc.K = 12
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunFailures(fc, []string{experiment.ProtoGMP}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
