module gmp

go 1.22
